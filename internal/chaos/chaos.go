// Package chaos is the self-healing soak harness: it stands up a real
// relperfd grid — one coordinator plus supervised workers, each a separate
// process kept alive by internal/supervise — and then spends a seeded
// schedule of rounds hurting it while clients keep submitting and reading
// suites. Each round injects one fault into one worker:
//
//	kill        SIGKILL mid-suite; the supervisor restarts the worker and
//	            its fresh epoch requalifies it with the coordinator
//	pause       SIGSTOP; dispatches to it time out, the health machine
//	            quarantines it, SIGCONT brings it back via probation
//	slow-start  SIGKILL plus a one-shot RELPERF_FAULTPOINT=daemon.start
//	            arming of the next start, so the first restart dies at
//	            startup and the supervisor has to back off and try again
//
// The harness then asserts the whole robustness contract at once: every
// client request of every round succeeds (HTTP 200, no errors), every
// result is byte-identical to a single-node golden computed up front, and
// every killed worker is back in the registry, healthy, within the
// configured rejoin bound. Any violation reports the seed, so a failing
// schedule replays exactly.
//
// The observability surface is soaked alongside the data plane: every
// round runs one federated /v1/grid/metrics scrape while the fault is
// live — it must answer within a bounded window with the coordinator's
// own series (a dead worker degrades its own rows, never the scrape),
// and a paused worker must surface as stale (grid_scrape_ok 0), not
// missing. Every study's fanned-in /v1/trace timeline must answer, a
// lost remote half must be loud (fetch-failed), and at least one study
// per soak must produce a fully merged coordinator+worker trace.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"relperf/internal/fleet"
	"relperf/internal/grid"
	"relperf/internal/obs"
	"relperf/internal/supervise"
	"relperf/internal/xrand"
)

// Action is one fault the soak can inject into a worker.
type Action string

const (
	ActionKill      Action = "kill"
	ActionPause     Action = "pause"
	ActionSlowStart Action = "slow-start"
)

// actions is the schedule alphabet, indexed by the seeded draw.
var actions = [...]Action{ActionKill, ActionPause, ActionSlowStart}

// Config configures a soak run.
type Config struct {
	// Binary is the relperfd binary to run (built by the caller).
	Binary string
	// Seed drives the fault schedule — which worker, which action, per
	// round. Equal seeds replay identical schedules.
	Seed uint64
	// SuiteSeed is the study seed every node runs with (default 1); the
	// golden is computed at the same seed.
	SuiteSeed uint64
	// Rounds is how many fault rounds to run (default 5).
	Rounds int
	// Workers is the grid size (default 2).
	Workers int
	// RejoinBound is how long a killed worker may take to be back and
	// healthy in the coordinator's registry: supervisor backoff plus
	// readiness plus one heartbeat, with margin (default 15s).
	RejoinBound time.Duration
	// Settle is how long a submitted suite runs before the fault lands
	// (default 100ms) — long enough to be mid-suite, short enough that the
	// suite is still in flight.
	Settle time.Duration
	// Logf receives harness progress; nil discards it.
	Logf func(format string, args ...any)
	// ChildOutput receives every daemon's stderr; nil discards it.
	ChildOutput io.Writer
	// Obs, when set, receives the supervisors' restart/state metrics.
	Obs *obs.Obs
}

// RoundReport records one fault round.
type RoundReport struct {
	Round       int           `json:"round"`
	Target      string        `json:"target"`
	Action      Action        `json:"action"`
	Studies     int           `json:"studies"`
	RejoinAfter time.Duration `json:"rejoin_after_ns"`
}

// Report is the outcome of a soak run. A run that returns a nil error
// always has Failed == 0 and Divergent == 0.
type Report struct {
	Seed      uint64        `json:"seed"`
	Workers   int           `json:"workers"`
	Rounds    []RoundReport `json:"rounds"`
	Requests  int           `json:"requests"`
	Failed    int           `json:"failed"`
	Divergent int           `json:"divergent"`
	Restarts  uint64        `json:"restarts"`
	// FederatedScrapes counts the mid-fault /v1/grid/metrics scrapes that
	// completed; a passing run has one per round.
	FederatedScrapes int `json:"federated_scrapes"`
	// MergedTraces counts studies whose fanned-in timeline carried both
	// coordinator and worker spans; a passing run has at least one.
	MergedTraces int `json:"merged_traces"`
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf("chaos: "+format, args...)
	}
}

// roundSuite is round r's workload: two cheap tableI studies (plain and
// matrix) whose measurement count varies per round, so every round has
// fresh fingerprints and the grid genuinely computes under fire.
func roundSuite(r int) []fleet.StudySpec {
	return []fleet.StudySpec{
		{Workload: "tableI", LoopN: 2, Measurements: 4 + r, Reps: 8},
		{Workload: "tableI", LoopN: 2, Measurements: 4 + r, Reps: 8, Matrix: true},
	}
}

// reservePorts grabs n distinct loopback ports. The listeners close before
// the daemons start, so the addresses stay stable across worker restarts —
// a restarted worker must come back on the URL it advertised.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// Run executes the soak and returns its report. The error is non-nil when
// any invariant broke — failed requests, byte divergence, a worker that
// never rejoined, a supervisor that gave up — and always names the seed.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Binary == "" {
		return nil, errors.New("chaos: Config.Binary is required")
	}
	if cfg.SuiteSeed == 0 {
		cfg.SuiteSeed = 1
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RejoinBound <= 0 {
		cfg.RejoinBound = 15 * time.Second
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 100 * time.Millisecond
	}
	rep := &Report{Seed: cfg.Seed, Workers: cfg.Workers}

	// Phase 1: the single-node golden. The library scheduler computes every
	// round's studies in-process at the suite seed; the grid must later
	// serve these exact bytes whatever faults land.
	golden := map[string][]byte{}
	fpsByRound := make([][]string, cfg.Rounds)
	{
		sched := fleet.New(fleet.Options{Workers: 1, Seed: cfg.SuiteSeed})
		for r := 0; r < cfg.Rounds; r++ {
			fps, err := sched.SubmitSpecs(roundSuite(r))
			if err != nil {
				sched.Close()
				return nil, fmt.Errorf("chaos: golden round %d: %w", r, err)
			}
			fpsByRound[r] = fps
			for _, fp := range fps {
				blob, err := sched.Result(ctx, fp)
				if err != nil {
					sched.Close()
					return nil, fmt.Errorf("chaos: golden round %d: %w", r, err)
				}
				golden[fp] = append(append([]byte(nil), blob...), '\n')
			}
		}
		sched.Close()
	}
	cfg.logf("golden computed: %d studies over %d rounds", len(golden), cfg.Rounds)

	// Phase 2: the grid. Fixed loopback ports so worker URLs survive
	// restarts; a tight TTL and dispatch timeout so paused workers fail
	// over in round time, not in production time.
	addrs, err := reservePorts(cfg.Workers + 1)
	if err != nil {
		return nil, fmt.Errorf("chaos: reserving ports: %w", err)
	}
	coordAddr, workerAddrs := addrs[0], addrs[1:]
	coordURL := "http://" + coordAddr

	coord := exec.Command(cfg.Binary,
		"-addr", coordAddr,
		"-seed", fmt.Sprint(cfg.SuiteSeed),
		"-coordinator",
		"-grid-ttl", "2s",
		"-grid-request-timeout", "2s",
		"-grid-scrape-timeout", "1s",
	)
	coord.Stdout = cfg.ChildOutput
	coord.Stderr = cfg.ChildOutput
	coord.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := coord.Start(); err != nil {
		return nil, fmt.Errorf("chaos: starting coordinator: %w", err)
	}
	coordDone := make(chan error, 1)
	go func() { coordDone <- coord.Wait() }()
	defer func() {
		_ = syscall.Kill(-coord.Process.Pid, syscall.SIGKILL)
		<-coordDone
	}()

	client := &http.Client{Timeout: time.Minute}
	if err := waitHTTP(ctx, client, coordURL+"/v1/healthz", 10*time.Second); err != nil {
		return nil, fmt.Errorf("chaos: coordinator never became healthy: %w", err)
	}

	// Workers run under real supervisors. doom[i] arms the *next* start of
	// worker i with a one-shot daemon.start fault — the slow-start action:
	// the first restart dies at startup and the supervisor must back off
	// and start it again.
	supCtx, stopSups := context.WithCancel(ctx)
	defer stopSups()
	sups := make([]*supervise.Supervisor, cfg.Workers)
	doom := make([]atomic.Bool, cfg.Workers)
	var wg sync.WaitGroup
	supErrs := make([]error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		i := i
		name := fmt.Sprintf("worker-%d", i)
		workerURL := "http://" + workerAddrs[i]
		sup, err := supervise.New(supervise.Config{
			Name: name,
			Command: []string{cfg.Binary,
				"-addr", workerAddrs[i],
				"-seed", fmt.Sprint(cfg.SuiteSeed),
				"-join", coordURL,
				"-advertise", workerURL,
				"-grid-heartbeat-timeout", "1s",
			},
			StartEnv: func() []string {
				if doom[i].CompareAndSwap(true, false) {
					return []string{"RELPERF_FAULTPOINT=daemon.start=error:1"}
				}
				return nil
			},
			Stdout:        cfg.ChildOutput,
			Stderr:        cfg.ChildOutput,
			BackoffBase:   50 * time.Millisecond,
			BackoffMax:    time.Second,
			RestartBudget: 10 * cfg.Rounds, // the soak restarts workers on purpose; only a true loop should trip
			RestartWindow: time.Minute,
			ReadyURL:      workerURL + "/v1/healthz",
			ReadyTimeout:  10 * time.Second,
			ShutdownGrace: 2 * time.Second,
			JitterKey:     xrand.Mix(cfg.Seed, uint64(i)+1),
			Logf:          cfg.Logf,
			Obs:           cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		sups[i] = sup
		wg.Add(1)
		go func() {
			defer wg.Done()
			supErrs[i] = sup.Run(supCtx)
		}()
	}
	defer wg.Wait()
	defer stopSups()

	workerID := func(i int) string { return "http://" + workerAddrs[i] }
	if err := waitWorkers(ctx, client, coordURL, cfg.Workers, func(ws []grid.WorkerStatus) bool {
		healthy := 0
		for _, w := range ws {
			if w.State == grid.StateHealthy {
				healthy++
			}
		}
		return healthy == cfg.Workers
	}, cfg.RejoinBound); err != nil {
		return nil, fmt.Errorf("chaos: grid never fully registered: %w", err)
	}
	cfg.logf("grid up: coordinator %s, %d workers", coordURL, cfg.Workers)

	// Phase 3: the rounds. Submit, let the suite get airborne, hurt one
	// worker, then read every result back and compare against the golden.
	for r := 0; r < cfg.Rounds; r++ {
		if ctx.Err() != nil {
			return rep, fmt.Errorf("chaos: cancelled at round %d (seed %d)", r, cfg.Seed)
		}
		target := int(xrand.Mix(cfg.Seed, uint64(r)+1) % uint64(cfg.Workers))
		action := actions[xrand.Mix(cfg.Seed+1, uint64(r)+1)%uint64(len(actions))]
		sup := sups[target]
		round := RoundReport{Round: r, Target: workerID(target), Action: action, Studies: len(fpsByRound[r])}

		fps, err := postSuite(client, coordURL, roundSuite(r))
		if err != nil {
			rep.Failed++
			return rep, fmt.Errorf("chaos: round %d submit failed (seed %d): %w", r, cfg.Seed, err)
		}
		rep.Requests++
		if strings.Join(fps, ",") != strings.Join(fpsByRound[r], ",") {
			return rep, fmt.Errorf("chaos: round %d fingerprints diverge from golden (seed %d)", r, cfg.Seed)
		}
		time.Sleep(cfg.Settle)

		cfg.logf("round %d: %s on %s", r, action, round.Target)
		// The target's current epoch anchors the rejoin assertion below: a
		// killed worker is only "back" once the listing shows a different
		// epoch — the restarted process, not the old lease coasting on its
		// TTL.
		oldEpoch := workerEpoch(client, coordURL, workerID(target))
		paused := false
		switch action {
		case ActionKill:
			_ = sup.Signal(syscall.SIGKILL)
		case ActionPause:
			_ = sup.Signal(syscall.SIGSTOP)
			paused = true
		case ActionSlowStart:
			doom[target].Store(true)
			_ = sup.Signal(syscall.SIGKILL)
		}

		// Observability under fire: one federated scrape with the fault
		// live. It must come back whole — coordinator series present —
		// within a bounded window (the scrapes run concurrently, so a
		// wedged worker costs one scrape timeout, not one per worker). A
		// paused worker is still registered at this point (its lease
		// outlives the freeze), so it must appear as stale, not vanish.
		scrapeStart := time.Now()
		fed, err := httpGetBody(client, coordURL+"/v1/grid/metrics")
		rep.Requests++
		if err != nil {
			rep.Failed++
			if paused {
				_ = sup.Signal(syscall.SIGCONT)
			}
			return rep, fmt.Errorf("chaos: round %d federated scrape failed mid-%s (seed %d): %w", r, action, cfg.Seed, err)
		}
		if elapsed := time.Since(scrapeStart); elapsed > 5*time.Second {
			if paused {
				_ = sup.Signal(syscall.SIGCONT)
			}
			return rep, fmt.Errorf("chaos: round %d federated scrape took %s mid-%s, want ~one scrape timeout (seed %d)", r, elapsed, action, cfg.Seed)
		}
		if !strings.Contains(fed, "grid_workers_live") {
			return rep, fmt.Errorf("chaos: round %d federated scrape lost the coordinator's own series (seed %d)", r, cfg.Seed)
		}
		if action == ActionPause && !strings.Contains(fed, fmt.Sprintf("grid_scrape_ok{worker=%q} 0", workerID(target))) {
			_ = sup.Signal(syscall.SIGCONT)
			return rep, fmt.Errorf("chaos: round %d: paused worker %s is missing from the federated scrape instead of stale (seed %d)", r, workerID(target), cfg.Seed)
		}
		rep.FederatedScrapes++

		for _, fp := range fps {
			body, err := getStudy(client, coordURL, fp)
			rep.Requests++
			if err != nil {
				rep.Failed++
				if paused {
					_ = sup.Signal(syscall.SIGCONT)
				}
				return rep, fmt.Errorf("chaos: round %d GET %s failed (seed %d): %w", r, fp, cfg.Seed, err)
			}
			if !bytes.Equal(body, golden[fp]) {
				rep.Divergent++
				if paused {
					_ = sup.Signal(syscall.SIGCONT)
				}
				return rep, fmt.Errorf("chaos: round %d study %s: grid bytes diverge from single-node golden (seed %d)", r, fp, cfg.Seed)
			}
		}
		if paused {
			_ = sup.Signal(syscall.SIGCONT)
		}

		// Trace fan-in under fire: every completed study's merged timeline
		// must answer, and a study that demonstrably ran remotely (its
		// coordinator half records a successful dispatch-attempt) must
		// either carry its worker half or degrade loudly with fetch-failed
		// — a silently coordinator-only trace is a fan-in bug, not an
		// outage.
		for _, fp := range fps {
			tr, err := getTrace(client, coordURL, fp)
			rep.Requests++
			if err != nil {
				rep.Failed++
				return rep, fmt.Errorf("chaos: round %d trace %s failed (seed %d): %w", r, fp, cfg.Seed, err)
			}
			var remoteDispatch, workerSpan, fetchFailed bool
			for _, s := range tr.Spans {
				switch {
				case s.Node == "coordinator" && s.Name == "dispatch-attempt" && s.Error == "" && s.Worker != "":
					remoteDispatch = true
				case s.Name == "fetch-failed":
					fetchFailed = true
				case s.Node != "" && s.Node != "coordinator":
					workerSpan = true
				}
			}
			if remoteDispatch && !workerSpan && !fetchFailed {
				return rep, fmt.Errorf("chaos: round %d trace %s ran remotely but has neither worker spans nor a fetch-failed marker (seed %d)", r, fp, cfg.Seed)
			}
			if remoteDispatch && workerSpan {
				rep.MergedTraces++
			}
		}

		// Self-healing assertion. A killed worker restarts with a new epoch
		// and must be listed healthy under it — the same ID still coasting
		// on its pre-kill lease does not count, only the re-registered
		// incarnation does. A paused worker keeps its epoch and may sit
		// anywhere in suspect → quarantined → probation, so for it the bar
		// is presence (its lease recovered), not health.
		rejoinStart := time.Now()
		id := workerID(target)
		err = waitWorkers(ctx, client, coordURL, cfg.Workers, func(ws []grid.WorkerStatus) bool {
			if len(ws) < cfg.Workers {
				return false
			}
			for _, w := range ws {
				if w.ID == id {
					if action == ActionPause {
						return true
					}
					return w.Epoch != oldEpoch && w.State == grid.StateHealthy
				}
			}
			return false
		}, cfg.RejoinBound)
		if err != nil {
			return rep, fmt.Errorf("chaos: round %d: worker %s (%s) not back within %s (seed %d): %w",
				r, id, action, cfg.RejoinBound, cfg.Seed, err)
		}
		round.RejoinAfter = time.Since(rejoinStart)
		rep.Rounds = append(rep.Rounds, round)
		cfg.logf("round %d: ok, %s back after %s", r, id, round.RejoinAfter.Round(time.Millisecond))
	}

	// Phase 4: the full sweep — every study of every round re-read from the
	// coordinator's cache must still be the golden bytes.
	for r := 0; r < cfg.Rounds; r++ {
		for _, fp := range fpsByRound[r] {
			body, err := getStudy(client, coordURL, fp)
			rep.Requests++
			if err != nil {
				rep.Failed++
				return rep, fmt.Errorf("chaos: final sweep GET %s failed (seed %d): %w", fp, cfg.Seed, err)
			}
			if !bytes.Equal(body, golden[fp]) {
				rep.Divergent++
				return rep, fmt.Errorf("chaos: final sweep study %s diverges (seed %d)", fp, cfg.Seed)
			}
		}
	}

	// At least one study over the soak must have produced a fully merged
	// cross-node trace: rounds where the serving worker died before its
	// timeline could be fetched degrade to fetch-failed, but if every
	// round degraded, fan-in never actually worked.
	if rep.MergedTraces == 0 {
		return rep, fmt.Errorf("chaos: no study produced a merged coordinator+worker trace over %d rounds (seed %d)", cfg.Rounds, cfg.Seed)
	}

	// Orderly teardown: stop the supervisors and ensure none of them gave
	// up mid-soak — a crash-looped supervisor is a failed run even if every
	// byte matched, because it means self-healing stopped.
	stopSups()
	wg.Wait()
	for i, err := range supErrs {
		if err != nil {
			return rep, fmt.Errorf("chaos: supervisor %d: %v (seed %d)", i, err, cfg.Seed)
		}
		rep.Restarts += sups[i].Restarts()
	}
	cfg.logf("soak complete: %d requests, %d restarts, %d federated scrapes, %d merged traces, zero failures, zero divergence",
		rep.Requests, rep.Restarts, rep.FederatedScrapes, rep.MergedTraces)
	return rep, nil
}

// waitHTTP polls url until it answers 200.
func waitHTTP(ctx context.Context, client *http.Client, url string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := client.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("chaos: %s not healthy after %s", url, d)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// workerEpoch reads the worker's currently registered epoch (0 when the
// listing is unreachable or the worker is absent).
func workerEpoch(client *http.Client, coordURL, id string) uint64 {
	resp, err := client.Get(coordURL + "/v1/grid/workers")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var wb workersBody
	if err := json.NewDecoder(resp.Body).Decode(&wb); err != nil {
		return 0
	}
	for _, w := range wb.Workers {
		if w.ID == id {
			return w.Epoch
		}
	}
	return 0
}

// workersBody mirrors the GET /v1/grid/workers response.
type workersBody struct {
	Workers []grid.WorkerStatus `json:"workers"`
}

// waitWorkers polls the coordinator's worker listing until ok(workers)
// holds.
func waitWorkers(ctx context.Context, client *http.Client, coordURL string, n int, ok func([]grid.WorkerStatus) bool, d time.Duration) error {
	deadline := time.Now().Add(d)
	var last []byte
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := client.Get(coordURL + "/v1/grid/workers")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			last = body
			var wb workersBody
			if json.Unmarshal(body, &wb) == nil && ok(wb.Workers) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met after %s; last listing: %s", d, last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// postSuite submits one suite and returns its fingerprints.
func postSuite(client *http.Client, coordURL string, studies []fleet.StudySpec) ([]string, error) {
	body, err := json.Marshal(fleet.SuiteRequest{Studies: studies})
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(coordURL+"/v1/suites", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("POST /v1/suites: %d %s", resp.StatusCode, b)
	}
	var sr struct {
		Fingerprints []string `json:"fingerprints"`
	}
	if err := json.Unmarshal(b, &sr); err != nil {
		return nil, err
	}
	return sr.Fingerprints, nil
}

// httpGetBody GETs url and returns the body, erroring on non-200.
func httpGetBody(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body), nil
}

// traceBody mirrors the coordinator's GET /v1/trace/{fp} response.
type traceBody struct {
	Nodes []string `json:"nodes"`
	Spans []struct {
		Name   string `json:"name"`
		Node   string `json:"node"`
		Worker string `json:"worker"`
		Error  string `json:"error"`
	} `json:"spans"`
}

// getTrace reads one study's fanned-in timeline from the coordinator.
func getTrace(client *http.Client, coordURL, fp string) (*traceBody, error) {
	body, err := httpGetBody(client, coordURL+"/v1/trace/"+fp)
	if err != nil {
		return nil, err
	}
	var tr traceBody
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// getStudy reads one study's full response body.
func getStudy(client *http.Client, coordURL, fp string) ([]byte, error) {
	resp, err := client.Get(coordURL + "/v1/studies/" + fp)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/studies/%s: %d %s", fp, resp.StatusCode, body)
	}
	return body, nil
}
