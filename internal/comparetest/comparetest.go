// Package comparetest holds the retired value-space bootstrap kernel as a
// single executable specification, in the spirit of testing/iotest: it is
// imported only by tests and benchmarks. Both property layers (the
// WinRate-level pin in internal/compare and the engine-level pin at the
// repository root) and the old arm of BenchmarkWinRate defer to this one
// copy, so the definition of "bit-identical to the old kernel" cannot
// drift between them.
package comparetest

import (
	"relperf/internal/stats"
	"relperf/internal/xrand"
)

// ReferenceWinRate is the pre-index-space bootstrap win-rate loop,
// verbatim: per round, materialize one value resample per side (a first,
// then b), insertion-sort each, read every quantile with
// stats.QuantileSorted, and credit a full win when a's quantile is
// strictly below b's and half a win on ties. bufA and bufB must have
// len(a) and len(b) elements.
func ReferenceWinRate(rng *xrand.Rand, a, b, bufA, bufB []float64, qs []float64, rounds int) float64 {
	var wins float64
	for r := 0; r < rounds; r++ {
		rng.Resample(bufA, a)
		rng.Resample(bufB, b)
		stats.SortSmall(bufA)
		stats.SortSmall(bufB)
		for _, q := range qs {
			va := stats.QuantileSorted(bufA, q)
			vb := stats.QuantileSorted(bufB, q)
			switch {
			case va < vb:
				wins++
			case va == vb:
				wins += 0.5
			}
		}
	}
	return wins / float64(rounds*len(qs))
}
