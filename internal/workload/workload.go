// Package workload defines the paper's scientific codes in both model space
// (sim.Task resource descriptions, for the analytical simulator) and real
// space (actual dense linear-algebra executions via internal/mat, for the
// hybrid measured mode of the paper's footnote 2).
//
// Two workloads reproduce the paper's evaluation:
//
//   - Figure1: a two-loop code of matrix-multiplication MathTasks with the
//     four placements DD, DA, AD, AA (Figure 1a/1b).
//   - TableI: the three-MathTask code of Procedure 5 — Regularized Least
//     Squares loops of sizes 50, 75 and 300 — with all 8 placements.
//
// The accelerator-efficiency curves below are the calibrated substitution
// for the paper's measured TensorFlow kernels: a GPU executing a chain of
// small dependent kernels (random generation, Gram, Cholesky, triangular
// solves) sustains only a tiny fraction of peak, growing with problem size.
// The constants were fitted so that the noiseless per-placement times induce
// the same ordering and cluster structure as the paper's Table I; the fit is
// documented in EXPERIMENTS.md.
package workload

import (
	"fmt"
	"math"

	"relperf/internal/mat"
	"relperf/internal/sim"
)

// dispatchesPerRLSIter is the number of kernel dispatches one iteration of
// the MathTask loop issues (two random generations, Gram, diagonal shift,
// AᵀB, Cholesky, two triangular solves — the residual ops fuse with the
// last GEMM in framework graphs).
const dispatchesPerRLSIter = 8

// dispatchesPerGEMMIter is the dispatch count of one iteration of a
// matrix-multiplication loop (two random generations and the product).
const dispatchesPerGEMMIter = 3

// Calibrated accelerator-efficiency model for the RLS MathTask op mix: the
// sustainable rate on the accelerator is a Hill curve in the per-iteration
// FLOP volume F,
//
//	rate(F) = rlsAccelMaxRate * z/(1+z),   z = (F/rlsAccelHalfFlops)^rlsAccelHill
//
// so a size-50 task runs at ~4 GFLOP/s (launch-bound, sequential Cholesky)
// while a size-300 task approaches ~64 GFLOP/s.
const (
	rlsAccelMaxRate   = 67.9e9  // flop/s, saturated rate for this op chain
	rlsAccelHalfFlops = 1.707e6 // per-iteration flops at half saturation
	rlsAccelHill      = 4.56    // steepness of the occupancy ramp
)

// Calibrated accelerator-efficiency model for plain GEMM loops
// (Michaelis–Menten in per-iteration flops, capped at gemmAccelCap):
// mid-size products reach hundreds of GFLOP/s to a few TFLOP/s.
const (
	gemmAccelMaxRate   = 4.59e12 // flop/s, asymptote of the fit
	gemmAccelHalfFlops = 154.0e6 // per-iteration flops at half rate
	gemmAccelCap       = 4.0e12  // physical sustained DP ceiling
)

// rlsAccelRate returns the sustainable accelerator rate for an RLS MathTask
// with the given per-iteration FLOP volume.
func rlsAccelRate(flopsPerIter float64) float64 {
	z := math.Pow(flopsPerIter/rlsAccelHalfFlops, rlsAccelHill)
	return rlsAccelMaxRate * z / (1 + z)
}

// gemmAccelRate returns the sustainable accelerator rate for a GEMM loop
// with the given per-iteration FLOP volume.
func gemmAccelRate(flopsPerIter float64) float64 {
	r := gemmAccelMaxRate * flopsPerIter / (flopsPerIter + gemmAccelHalfFlops)
	if r > gemmAccelCap {
		r = gemmAccelCap
	}
	return r
}

// accelEff converts a sustainable rate into a sim.Task efficiency fraction
// relative to an accelerator peak.
func accelEff(rate, peak float64) float64 {
	e := rate / peak
	if e > 1 {
		return 1
	}
	return e
}

// MathTaskSpec describes one loop of Procedure 5: n iterations of the
// Regularized Least Squares MathTask of Procedure 6 on size×size matrices.
type MathTaskSpec struct {
	// Name labels the loop ("L1").
	Name string
	// Size is the matrix dimension of the RLS problem.
	Size int
	// Iters is the loop count n of Procedure 6.
	Iters int
	// Lambda is the initial regularization; the running penalty of the
	// task chain is added to it at execution time.
	Lambda float64
}

// Validate rejects unusable specs.
func (s *MathTaskSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: MathTask with empty name")
	}
	if s.Size <= 0 {
		return fmt.Errorf("workload: MathTask %s has non-positive size %d", s.Name, s.Size)
	}
	if s.Iters <= 0 {
		return fmt.Errorf("workload: MathTask %s has non-positive iteration count %d", s.Name, s.Iters)
	}
	return nil
}

// FlopsPerIter returns the FLOPs of one loop iteration.
func (s *MathTaskSpec) FlopsPerIter() int64 { return mat.FlopsMathTask(s.Size) }

// Flops returns the total FLOPs of the task.
func (s *MathTaskSpec) Flops() int64 { return int64(s.Iters) * s.FlopsPerIter() }

// Task converts the spec into the simulator's resource description, using
// accelPeak (the accelerator's PeakFlops) to derive the efficiency fraction.
// Per iteration the host-centric data model ships the two size×size inputs
// over and the size×size result back.
func (s *MathTaskSpec) Task(accelPeak float64) sim.Task {
	bytesPerMatrix := int64(s.Size) * int64(s.Size) * 8
	return sim.Task{
		Name:         s.Name,
		Flops:        s.Flops(),
		Launches:     int64(s.Iters) * dispatchesPerRLSIter,
		HostInBytes:  int64(s.Iters) * 2 * bytesPerMatrix,
		HostOutBytes: int64(s.Iters) * bytesPerMatrix,
		Transfers:    int64(s.Iters) * 3,
		EdgeEff:      1,
		AccelEff:     accelEff(rlsAccelRate(float64(s.FlopsPerIter())), accelPeak),
	}
}

// GEMMTaskSpec describes a loop of plain matrix-multiplications — the
// Figure 1a workload ("each calling a certain function that performs
// matrix-matrix multiplication").
type GEMMTaskSpec struct {
	Name  string
	Size  int
	Iters int
	// CachePenaltySeconds is the extra cost paid when the task runs on the
	// same device as its predecessor (cache interference between
	// consecutive kernel sequences — the paper's reference [2]).
	CachePenaltySeconds float64
}

// Validate rejects unusable specs.
func (s *GEMMTaskSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: GEMM task with empty name")
	}
	if s.Size <= 0 || s.Iters <= 0 {
		return fmt.Errorf("workload: GEMM task %s has non-positive dimensions", s.Name)
	}
	return nil
}

// FlopsPerIter returns the FLOPs of one product.
func (s *GEMMTaskSpec) FlopsPerIter() int64 { return mat.FlopsGEMM(s.Size, s.Size, s.Size) }

// Flops returns the total FLOPs of the loop.
func (s *GEMMTaskSpec) Flops() int64 { return int64(s.Iters) * s.FlopsPerIter() }

// Task converts the spec into the simulator's resource description.
func (s *GEMMTaskSpec) Task(accelPeak float64) sim.Task {
	bytesPerMatrix := int64(s.Size) * int64(s.Size) * 8
	return sim.Task{
		Name:                s.Name,
		Flops:               s.Flops(),
		Launches:            int64(s.Iters) * dispatchesPerGEMMIter,
		HostInBytes:         int64(s.Iters) * 2 * bytesPerMatrix,
		HostOutBytes:        int64(s.Iters) * bytesPerMatrix,
		Transfers:           int64(s.Iters) * 3,
		EdgeEff:             1,
		AccelEff:            accelEff(gemmAccelRate(float64(s.FlopsPerIter())), accelPeak),
		CachePenaltySeconds: s.CachePenaltySeconds,
	}
}

// TableISpecs returns the three MathTask loops of the paper's Procedure 5:
// sizes 50, 75 and 300, each running n iterations (the paper's experiment
// uses n = 10).
func TableISpecs(n int) []MathTaskSpec {
	return []MathTaskSpec{
		{Name: "L1", Size: 50, Iters: n, Lambda: 0.5},
		{Name: "L2", Size: 75, Iters: n, Lambda: 0.5},
		{Name: "L3", Size: 300, Iters: n, Lambda: 0.5},
	}
}

// TableI builds the simulator program of the Table-I experiment for the
// given accelerator peak rate.
func TableI(n int, accelPeak float64) *sim.Program {
	specs := TableISpecs(n)
	p := &sim.Program{Name: fmt.Sprintf("tableI-n%d", n)}
	for i := range specs {
		p.Tasks = append(p.Tasks, specs[i].Task(accelPeak))
	}
	return p
}

// Figure1Specs returns the two matrix-multiplication loops of Figure 1a:
// L1 is a short loop of mid-size products (compute-dominated — profitable to
// offload), L2 a long loop of smaller products whose aggregate data movement
// outweighs the accelerator's speed-up — the paper's observation that "the
// overhead caused by the larger data-movement between CPU and GPU is
// slightly more than the speed-up gain".
// The cache-carry penalty of L2 (0.7 ms, ~2% of its runtime) models the
// interference between consecutive kernel sequences on the same device; it
// is what separates AA from AD more than DA from DD in Figure 1b.
func Figure1Specs() []GEMMTaskSpec {
	return []GEMMTaskSpec{
		{Name: "L1", Size: 320, Iters: 25},
		{Name: "L2", Size: 160, Iters: 200, CachePenaltySeconds: 0.7e-3},
	}
}

// Figure1 builds the simulator program of the Figure-1 experiment.
func Figure1(accelPeak float64) *sim.Program {
	specs := Figure1Specs()
	p := &sim.Program{Name: "figure1"}
	for i := range specs {
		p.Tasks = append(p.Tasks, specs[i].Task(accelPeak))
	}
	return p
}
