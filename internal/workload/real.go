package workload

import (
	"fmt"

	"relperf/internal/mat"
	"relperf/internal/measure"
	"relperf/internal/sim"
	"relperf/internal/xrand"
)

// This file implements the paper's Procedures 5 and 6 *literally*: real dense
// linear algebra executed on the host. It serves two purposes:
//
//  1. It proves the mathematical equivalence of the placement algorithms —
//     every placement computes the identical penalty chain, because the
//     computation does not depend on where it runs.
//  2. It provides the hybrid measurement mode of the paper's footnote 2
//     ("other device-accelerator settings can be simulated by adding
//     artificial delays and controlling the number of threads"): kernels run
//     for real on the host, the measured wall time is rescaled to the
//     modeled device's rate, and modeled transfer/overhead delays are added.
//     The noise in the resulting samples is the host's genuine system noise.

// RunMathTask executes Procedure 6: n iterations of generating A, B ∈
// R^(size×size), solving Z = (AᵀA + (λ+penalty)·I)⁻¹AᵀB and updating the
// penalty to ‖AZ − B‖². It returns the final penalty.
func RunMathTask(rng *xrand.Rand, spec *MathTaskSpec, penalty float64) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	for i := 0; i < spec.Iters; i++ {
		A := mat.Rand(rng, spec.Size, spec.Size)
		B := mat.Rand(rng, spec.Size, spec.Size)
		lambda := spec.Lambda + penalty
		Z, err := mat.SolveRLS(A, B, lambda)
		if err != nil {
			return 0, fmt.Errorf("workload: %s iteration %d: %w", spec.Name, i, err)
		}
		penalty, err = mat.RLSResidual(A, Z, B)
		if err != nil {
			return 0, fmt.Errorf("workload: %s iteration %d residual: %w", spec.Name, i, err)
		}
		// Normalize so the penalty stays O(1) across sizes; the raw
		// residual grows with the matrix volume and would swamp λ.
		penalty /= float64(spec.Size) * float64(spec.Size)
	}
	return penalty, nil
}

// RealRunResult is one real execution of the scientific code.
type RealRunResult struct {
	// FinalPenalty is the value returned by the last MathTask; identical
	// across placements for a fixed seed — the mathematical-equivalence
	// witness.
	FinalPenalty float64
	// TaskSeconds are the measured host wall times per task.
	TaskSeconds []float64
}

// RunScientificCode executes Procedure 5 on the host: the task chain with
// the penalty threaded through, timing each task.
func RunScientificCode(seed uint64, specs []MathTaskSpec) (*RealRunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: no tasks")
	}
	rng := xrand.New(seed)
	res := &RealRunResult{TaskSeconds: make([]float64, len(specs))}
	penalty := 0.0
	for i := range specs {
		spec := &specs[i]
		var err error
		res.TaskSeconds[i] = measure.Time(func() {
			penalty, err = RunMathTask(rng, spec, penalty)
		})
		if err != nil {
			return nil, err
		}
	}
	res.FinalPenalty = penalty
	return res, nil
}

// HybridExecutor measures real host kernel executions and rescales them to a
// modeled platform: per task, the measured wall time w is converted to
//
//	t(device) = overheads(device) + w · hostRate/deviceRate + transfer(link)
//
// where hostRate is calibrated once from a reference run. The multiplicative
// system noise of the host machine carries through into the samples, so the
// distributions have genuine (not synthetic) measurement noise.
type HybridExecutor struct {
	Platform *sim.Platform
	Specs    []MathTaskSpec
	// hostRate is the calibrated host FLOP rate (flop/s).
	hostRate float64
	rng      *xrand.Rand
}

// NewHybridExecutor calibrates the host against one reference execution of
// the spec chain and returns an executor.
func NewHybridExecutor(pl *sim.Platform, specs []MathTaskSpec, seed uint64) (*HybridExecutor, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	ref, err := RunScientificCode(seed, specs)
	if err != nil {
		return nil, err
	}
	var totalFlops int64
	var totalSecs float64
	for i := range specs {
		totalFlops += specs[i].Flops()
		totalSecs += ref.TaskSeconds[i]
	}
	if totalSecs <= 0 {
		return nil, fmt.Errorf("workload: calibration run took no measurable time")
	}
	return &HybridExecutor{
		Platform: pl,
		Specs:    specs,
		hostRate: float64(totalFlops) / totalSecs,
		rng:      xrand.New(seed + 1),
	}, nil
}

// HostRate returns the calibrated host FLOP rate.
func (h *HybridExecutor) HostRate() float64 { return h.hostRate }

// Run executes the chain once for the given placement: real kernels, scaled
// times, modeled overheads and transfers.
func (h *HybridExecutor) Run(pl sim.Placement) (float64, error) {
	if len(pl) != len(h.Specs) {
		return 0, fmt.Errorf("workload: placement %s has %d slots for %d tasks", pl, len(pl), len(h.Specs))
	}
	total := 0.0
	penalty := 0.0
	for i := range h.Specs {
		spec := &h.Specs[i]
		var err error
		w := measure.Time(func() {
			penalty, err = RunMathTask(h.rng, spec, penalty)
		})
		if err != nil {
			return 0, err
		}
		task := spec.Task(h.Platform.Accel.PeakFlops)
		var dev = h.Platform.Edge
		eff := task.EdgeEff
		if pl[i].Letter() == "A" {
			dev = h.Platform.Accel
			eff = task.AccelEff
		}
		if eff <= 0 {
			eff = 1
		}
		deviceRate := dev.PeakFlops * eff
		scaled := w * h.hostRate / deviceRate
		scaled += dev.TaskOverhead.Seconds() + float64(task.Launches)*dev.LaunchOverhead.Seconds()
		if pl[i].Letter() == "A" {
			moved := task.HostInBytes + task.HostOutBytes
			scaled += float64(task.Transfers)*h.Platform.Link.Latency.Seconds() +
				float64(moved)/h.Platform.Link.Bandwidth
		}
		total += scaled
	}
	return total, nil
}
