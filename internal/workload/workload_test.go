package workload

import (
	"math"
	"testing"

	"relperf/internal/mat"
	"relperf/internal/sim"
	"relperf/internal/xrand"
)

func TestMathTaskSpecValidate(t *testing.T) {
	good := MathTaskSpec{Name: "L1", Size: 50, Iters: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MathTaskSpec{
		{Size: 50, Iters: 10},
		{Name: "L", Size: 0, Iters: 10},
		{Name: "L", Size: 50, Iters: 0},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGEMMTaskSpecValidate(t *testing.T) {
	good := GEMMTaskSpec{Name: "L1", Size: 64, Iters: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&GEMMTaskSpec{Size: 1, Iters: 1}).Validate() == nil {
		t.Fatal("nameless accepted")
	}
	if (&GEMMTaskSpec{Name: "x", Size: 0, Iters: 1}).Validate() == nil {
		t.Fatal("zero size accepted")
	}
}

func TestMathTaskSpecFlops(t *testing.T) {
	s := MathTaskSpec{Name: "L", Size: 50, Iters: 10}
	if s.FlopsPerIter() != mat.FlopsMathTask(50) {
		t.Fatal("FlopsPerIter mismatch")
	}
	if s.Flops() != 10*mat.FlopsMathTask(50) {
		t.Fatal("Flops mismatch")
	}
}

func TestMathTaskToSimTask(t *testing.T) {
	s := MathTaskSpec{Name: "L3", Size: 300, Iters: 10}
	task := s.Task(4.7e12)
	if err := task.Validate(); err != nil {
		t.Fatal(err)
	}
	if task.Launches != 80 {
		t.Fatalf("launches = %d, want 80", task.Launches)
	}
	// Host-centric data: 2 inputs over, 1 result back, per iteration.
	perMat := int64(300 * 300 * 8)
	if task.HostInBytes != 10*2*perMat || task.HostOutBytes != 10*perMat {
		t.Fatalf("host bytes = %d/%d", task.HostInBytes, task.HostOutBytes)
	}
	if task.Transfers != 30 {
		t.Fatalf("transfers = %d", task.Transfers)
	}
	if task.EdgeEff != 1 {
		t.Fatal("edge efficiency should be 1")
	}
	if task.AccelEff <= 0 || task.AccelEff > 1 {
		t.Fatalf("accel efficiency = %v", task.AccelEff)
	}
}

func TestAccelEfficiencyMonotoneInSize(t *testing.T) {
	// Larger RLS tasks must sustain a larger fraction of accelerator peak.
	prev := 0.0
	for _, size := range []int{25, 50, 75, 150, 300, 600} {
		s := MathTaskSpec{Name: "L", Size: size, Iters: 10}
		e := s.Task(4.7e12).AccelEff
		if e <= prev {
			t.Fatalf("efficiency not increasing at size %d: %v <= %v", size, e, prev)
		}
		prev = e
	}
}

func TestGEMMEfficiencyMonotoneAndCapped(t *testing.T) {
	prev := 0.0
	for _, size := range []int{32, 64, 128, 320, 1024, 4096} {
		s := GEMMTaskSpec{Name: "L", Size: size, Iters: 1}
		e := s.Task(4.7e12).AccelEff
		if e < prev {
			t.Fatalf("GEMM efficiency decreasing at size %d", size)
		}
		if e > 1 {
			t.Fatalf("efficiency above 1 at size %d", size)
		}
		prev = e
	}
	// Huge products hit the physical ceiling, not the fit's asymptote.
	if r := gemmAccelRate(1e15); r != gemmAccelCap {
		t.Fatalf("asymptotic rate = %v, want the %v cap", r, gemmAccelCap)
	}
}

func TestTableISpecs(t *testing.T) {
	specs := TableISpecs(10)
	if len(specs) != 3 {
		t.Fatal("want 3 tasks")
	}
	wantSizes := []int{50, 75, 300}
	for i, s := range specs {
		if s.Size != wantSizes[i] || s.Iters != 10 {
			t.Fatalf("spec %d = %+v", i, s)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableIProgramValid(t *testing.T) {
	p := TableI(10, 4.7e12)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 3 {
		t.Fatal("want 3 tasks")
	}
}

func TestFigure1ProgramValid(t *testing.T) {
	p := Figure1(4.7e12)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 2 {
		t.Fatal("want 2 tasks")
	}
}

// TestTableINominalOrdering asserts the calibrated noiseless ordering that
// induces the paper's Table-I cluster structure:
//
//	DDA < DAA < DDD < ADA < DAD < AAA < ADD < AAD
func TestTableINominalOrdering(t *testing.T) {
	plat := TableIPlatform()
	s, err := sim.NewSimulator(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := TableI(10, plat.Accel.PeakFlops)
	times := map[string]float64{}
	for _, pl := range sim.EnumeratePlacements(3) {
		v, err := s.NominalSeconds(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		times[pl.String()] = v
	}
	order := []string{"DDA", "DAA", "DDD", "ADA", "DAD", "AAA", "ADD", "AAD"}
	for i := 1; i < len(order); i++ {
		if times[order[i-1]] >= times[order[i]] {
			t.Fatalf("ordering violated: %s (%v) >= %s (%v)",
				order[i-1], times[order[i-1]], order[i], times[order[i]])
		}
	}
	// The paper-critical margins.
	if gap := times["DDD"] - times["DDA"]; gap < 2e-3 || gap > 5e-3 {
		t.Fatalf("DDA advantage = %v s, want a few ms", gap)
	}
	if times["AAD"] != math.Inf(1) && times["AAD"] <= times["AAA"] {
		t.Fatal("AAD must be strictly worst")
	}
}

// TestFigure1NominalShape asserts the Figure-1b shape: AD clearly fastest,
// AA close behind it, DD and DA nearly identical and far slower.
func TestFigure1NominalShape(t *testing.T) {
	plat := Figure1Platform()
	s, err := sim.NewSimulator(plat, 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := Figure1(plat.Accel.PeakFlops)
	times := map[string]float64{}
	for _, pl := range sim.EnumeratePlacements(2) {
		v, err := s.NominalSeconds(prog, pl)
		if err != nil {
			t.Fatal(err)
		}
		times[pl.String()] = v
	}
	if !(times["AD"] < times["AA"] && times["AA"] < times["DD"] && times["DD"] < times["DA"]) {
		t.Fatalf("shape violated: %v", times)
	}
	// AD's margin over DD is large (offloading L1 pays off hugely)...
	if times["DD"]-times["AD"] < 10e-3 {
		t.Fatalf("AD advantage too small: %v", times["DD"]-times["AD"])
	}
	// ...but offloading L2 costs slightly more than it gains — the paper's
	// data-movement observation: DA is within a whisker of DD (the cache
	// penalty L2 pays in DD almost exactly offsets the offload cost in DA).
	if d := times["DA"] - times["DD"]; d < 0 || d > 0.5e-3 {
		t.Fatalf("L2 offload penalty = %v s, want tiny positive", d)
	}
	// AA trails AD by more: L2-on-A pays the offload cost AND L2 inherits
	// no cache relief, so the margin includes the full delta.
	if d := times["AA"] - times["AD"]; d < 0.8e-3 || d > 2.5e-3 {
		t.Fatalf("AA-AD margin = %v s", d)
	}
}

func TestRunMathTaskPenaltyChain(t *testing.T) {
	spec := MathTaskSpec{Name: "L1", Size: 20, Iters: 3, Lambda: 0.5}
	rngSeed := uint64(42)
	p1, err := RunMathTask(xrand.New(rngSeed), &spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= 0 || math.IsNaN(p1) || math.IsInf(p1, 0) {
		t.Fatalf("penalty = %v", p1)
	}
	// Deterministic given the seed.
	p2, err := RunMathTask(xrand.New(rngSeed), &spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("penalty not reproducible")
	}
	// Different starting penalty changes the chain.
	p3, err := RunMathTask(xrand.New(rngSeed), &spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("starting penalty ignored")
	}
	// Invalid spec rejected.
	badSpec := MathTaskSpec{Name: "", Size: 20, Iters: 3}
	if _, err := RunMathTask(xrand.New(1), &badSpec, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRunScientificCodeEquivalenceWitness(t *testing.T) {
	// The final penalty depends only on the seed — never on placement —
	// because the algorithms are mathematically equivalent. Two runs with
	// the same seed agree exactly.
	specs := []MathTaskSpec{
		{Name: "L1", Size: 15, Iters: 2, Lambda: 0.5},
		{Name: "L2", Size: 20, Iters: 2, Lambda: 0.5},
	}
	a, err := RunScientificCode(7, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScientificCode(7, specs)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalPenalty != b.FinalPenalty {
		t.Fatal("equivalent runs disagree")
	}
	if len(a.TaskSeconds) != 2 {
		t.Fatal("task timing missing")
	}
	for _, s := range a.TaskSeconds {
		if s < 0 {
			t.Fatal("negative task time")
		}
	}
	if _, err := RunScientificCode(1, nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
}

func TestHybridExecutor(t *testing.T) {
	specs := []MathTaskSpec{
		{Name: "L1", Size: 15, Iters: 2, Lambda: 0.5},
		{Name: "L2", Size: 25, Iters: 2, Lambda: 0.5},
	}
	h, err := NewHybridExecutor(sim.DefaultPlatform(), specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.HostRate() <= 0 {
		t.Fatalf("host rate = %v", h.HostRate())
	}
	for _, ps := range []string{"DD", "DA", "AD", "AA"} {
		pl, _ := sim.ParsePlacement(ps)
		v, err := h.Run(pl)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Fatalf("%s: non-positive hybrid time %v", ps, v)
		}
	}
	// Placement length mismatch rejected.
	pl3, _ := sim.ParsePlacement("DDD")
	if _, err := h.Run(pl3); err == nil {
		t.Fatal("placement mismatch accepted")
	}
}

func TestHybridExecutorRejectsBadPlatform(t *testing.T) {
	if _, err := NewHybridExecutor(&sim.Platform{}, TableISpecs(1), 1); err == nil {
		t.Fatal("bad platform accepted")
	}
}
