package workload

import (
	"testing"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/sim"
)

// clusterPlacements runs the full measurement→comparison→clustering pipeline
// for a program over all placements and returns the final assignment plus
// the placement names.
func clusterPlacements(t *testing.T, plat *sim.Platform, prog *sim.Program, nTasks, nMeas int,
	simSeed, cmpSeed, clusterSeed uint64) (map[string]int, map[string]float64, *core.ClusterResult) {
	t.Helper()
	s, err := sim.NewSimulator(plat, simSeed)
	if err != nil {
		t.Fatal(err)
	}
	pls := sim.EnumeratePlacements(nTasks)
	samples := make([][]float64, len(pls))
	for i, pl := range pls {
		samples[i], err = s.Sample(prog, pl, nMeas)
		if err != nil {
			t.Fatal(err)
		}
	}
	cmp := compare.NewBootstrap(cmpSeed)
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(samples[i], samples[j]) }
	res, err := core.Cluster(len(pls), cf, core.ClusterOptions{Reps: 100, Seed: clusterSeed})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := res.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[string]int{}
	scores := map[string]float64{}
	for i, pl := range pls {
		ranks[pl.String()] = fa.Rank[i]
		scores[pl.String()] = fa.Score[i]
	}
	return ranks, scores, res
}

// TestTableIClusterShape is the E4 integration test: the full pipeline over
// the Table-I workload must reproduce the paper's qualitative structure.
// Multiple seeds are tried; the majority must satisfy every shape property
// (individual seeds may produce borderline merges — that fuzziness is the
// paper's own observation).
func TestTableIClusterShape(t *testing.T) {
	type outcome struct {
		ranks  map[string]int
		K      int
		passed bool
	}
	var results []outcome
	for seed := uint64(1); seed <= 5; seed++ {
		plat := TableIPlatform()
		prog := TableI(10, plat.Accel.PeakFlops)
		ranks, _, res := clusterPlacements(t, plat, prog, 3, 30, seed, seed*7+1, seed*13+2)
		maxRank := 0
		uniqueWorst := true
		for name, r := range ranks {
			if r > maxRank {
				maxRank = r
			}
			_ = name
		}
		worstCount := 0
		for _, r := range ranks {
			if r == maxRank {
				worstCount++
			}
		}
		uniqueWorst = worstCount == 1
		o := outcome{ranks: ranks, K: res.K}
		o.passed = ranks["DDA"] == 1 && // offloading only L3 is in the best class
			ranks["DDA"] < ranks["DDD"] && // ... and strictly beats all-on-device
			ranks["DDD"] <= ranks["ADA"] && // offloading the small L1 never helps
			ranks["ADA"] <= ranks["AAA"] && // hybrids at least match all-accelerator
			ranks["AAD"] == maxRank && uniqueWorst && // AAD strictly worst, alone
			res.MeanK >= 3.5 && res.MeanK <= 7.5 // about five classes
		results = append(results, o)
	}
	pass := 0
	for _, o := range results {
		if o.passed {
			pass++
		}
	}
	if pass < 3 {
		for i, o := range results {
			t.Logf("seed %d: K=%d ranks=%v passed=%v", i+1, o.K, o.ranks, o.passed)
		}
		t.Fatalf("Table-I shape held for only %d/5 seeds", pass)
	}
}

// TestTableIDAAStraddles asserts the paper's observation that DAA's
// membership is split between the top clusters: across seeds, DAA must never
// rank below DDD's class by more than one, and must sit at or adjacent to
// the top class.
func TestTableIDAAStraddles(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		plat := TableIPlatform()
		prog := TableI(10, plat.Accel.PeakFlops)
		ranks, _, _ := clusterPlacements(t, plat, prog, 3, 30, seed, seed+100, seed+200)
		if ranks["DAA"] > ranks["DDD"] {
			t.Fatalf("seed %d: DAA (C%d) fell below DDD (C%d)", seed, ranks["DAA"], ranks["DDD"])
		}
		if ranks["DAA"] < ranks["DDA"] {
			t.Fatalf("seed %d: DAA (C%d) beat DDA (C%d)", seed, ranks["DAA"], ranks["DDA"])
		}
	}
}

// TestFigure1ClusterShape is the E1/E2 integration: at N=500 the four
// placements must cluster like the paper's final Figure-2 sequence —
// AD on top, DD and DA sharing a class below AA.
func TestFigure1ClusterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 clustering is slow")
	}
	good := 0
	for seed := uint64(1); seed <= 3; seed++ {
		plat := Figure1Platform()
		prog := Figure1(plat.Accel.PeakFlops)
		ranks, _, _ := clusterPlacements(t, plat, prog, 2, 500, seed, seed+11, seed+22)
		ok := ranks["AD"] == 1 &&
			ranks["AA"] >= ranks["AD"] &&
			ranks["DD"] > ranks["AA"] &&
			ranks["DD"] == ranks["DA"]
		if ok {
			good++
		} else {
			t.Logf("seed %d ranks: %v", seed, ranks)
		}
	}
	if good < 2 {
		t.Fatalf("Figure-1 cluster shape held for only %d/3 seeds", good)
	}
}

// TestFigure1ComparisonFlipsNearThreshold checks the Section III
// observation: "For N = 30, algAD is just at the threshold of being better
// than algAA". At N=30 the AD-vs-AA win rate sits near the comparator's
// decision threshold, so for some measurement realizations, repeatedly
// comparing the SAME two samples yields a mix of "better" and "equivalent"
// — the source of the paper's fractional relative scores. At least one of
// the scanned seeds must exhibit mixed outcomes.
func TestFigure1ComparisonFlipsNearThreshold(t *testing.T) {
	cmp := compare.NewBootstrap(77)
	for seed := uint64(1); seed <= 12; seed++ {
		plat := Figure1Platform()
		prog := Figure1(plat.Accel.PeakFlops)
		s, err := sim.NewSimulator(plat, seed)
		if err != nil {
			t.Fatal(err)
		}
		plAD, _ := sim.ParsePlacement("AD")
		plAA, _ := sim.ParsePlacement("AA")
		ad, err := s.Sample(prog, plAD, 30)
		if err != nil {
			t.Fatal(err)
		}
		aa, err := s.Sample(prog, plAA, 30)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[compare.Outcome]int{}
		for i := 0; i < 30; i++ {
			o, err := cmp.Compare(ad, aa)
			if err != nil {
				t.Fatal(err)
			}
			counts[o]++
		}
		if counts[compare.Worse] > 20 {
			t.Fatalf("seed %d: AD mostly worse than AA: %v", seed, counts)
		}
		if len(counts) >= 2 {
			return // found the paper's flip behaviour
		}
	}
	t.Fatal("no seed produced mixed outcomes for the borderline AD-vs-AA pair")
}
