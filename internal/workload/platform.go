package workload

import (
	"relperf/internal/device"
	"relperf/internal/sim"
)

// TableIPlatform returns the testbed model used for the Table-I experiment:
// the default Xeon-core + P100 + PCIe platform.
func TableIPlatform() *sim.Platform {
	return sim.DefaultPlatform()
}

// Figure1Platform returns the testbed model for the Figure-1 experiment.
// The Figure-1b histograms show visibly wider, overlapping distributions
// than the Table-I runs (longer-running loops on a shared node), so the
// same devices carry a larger noise amplitude here.
func Figure1Platform() *sim.Platform {
	pl := sim.DefaultPlatform()
	pl.Edge.Noise = device.SpikyNoise{
		Base:  device.LogNormalNoise{Sigma: 0.15},
		P:     0.03,
		Scale: 0.08,
		Alpha: 1.5,
	}
	pl.Accel.Noise = device.SpikyNoise{
		Base:  device.LogNormalNoise{Sigma: 0.15},
		P:     0.03,
		Scale: 0.08,
		Alpha: 1.5,
	}
	// Pageable-memory transfers on a shared node jitter far more than the
	// dedicated-link default; without this, offloaded placements would have
	// unrealistically narrow distributions.
	pl.Link.Noise = device.LogNormalNoise{Sigma: 0.2}
	return pl
}
