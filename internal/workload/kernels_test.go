package workload

import (
	"testing"

	"relperf/internal/compare"
	"relperf/internal/core"
)

func TestRLSVariantsList(t *testing.T) {
	vs := RLSVariants()
	if len(vs) != 3 {
		t.Fatalf("want 3 variants, got %d", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if v.Solve == nil || v.Flops == nil || v.Name == "" {
			t.Fatalf("incomplete variant %+v", v)
		}
		names[v.Name] = true
		if v.Flops(64) <= 0 {
			t.Fatalf("%s: non-positive flop estimate", v.Name)
		}
	}
	if len(names) != 3 {
		t.Fatal("duplicate variant names")
	}
}

func TestVariantFlopOrdering(t *testing.T) {
	// The QR route costs more flops than the Cholesky route; the explicit
	// inverse costs more than Cholesky too (full LU inverse + extra GEMM).
	vs := RLSVariants()
	byName := map[string]KernelVariant{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	for _, s := range []int{32, 64, 128} {
		chol := byName["rls-cholesky"].Flops(s)
		qr := byName["rls-qr"].Flops(s)
		inv := byName["rls-inverse"].Flops(s)
		if qr <= chol {
			t.Fatalf("size %d: QR flops %d <= Cholesky %d", s, qr, chol)
		}
		if inv <= chol {
			t.Fatalf("size %d: inverse flops %d <= Cholesky %d", s, inv, chol)
		}
	}
}

func TestVerifyVariantsAgree(t *testing.T) {
	diff, err := VerifyVariantsAgree(24, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-8 {
		t.Fatalf("variants disagree by %v", diff)
	}
}

func TestMeasureKernelVariants(t *testing.T) {
	ss, err := MeasureKernelVariants(KernelStudyConfig{
		Size: 24, Iters: 2, N: 8, Warmup: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ss.Samples) != 3 {
		t.Fatalf("samples = %d", len(ss.Samples))
	}
	for _, s := range ss.Samples {
		if s.N() != 8 {
			t.Fatalf("%s: N = %d", s.Name, s.N())
		}
	}
}

func TestKernelVariantDefaults(t *testing.T) {
	var cfg KernelStudyConfig
	cfg.defaults()
	if cfg.Size != 64 || cfg.Iters != 3 || cfg.N != 30 || cfg.Warmup != 2 || cfg.Lambda != 0.5 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

// TestKernelVariantClusteringShape is the §V experiment end to end on real
// measured host times: the Cholesky route must never cluster below the QR
// route, and the explicit-inverse baseline must never beat Cholesky.
func TestKernelVariantClusteringShape(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real kernel executions")
	}
	ss, err := MeasureKernelVariants(KernelStudyConfig{
		Size: 48, Iters: 2, N: 20, Warmup: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmp := compare.NewBootstrap(13)
	data := ss.Data()
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(data[i], data[j]) }
	cr, err := core.Cluster(len(data), cf, core.ClusterOptions{Reps: 50, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := cr.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	for i, name := range ss.Names() {
		rank[name] = fa.Rank[i]
	}
	if rank["rls-cholesky"] > rank["rls-qr"] {
		t.Fatalf("Cholesky route (C%d) clustered below QR route (C%d)",
			rank["rls-cholesky"], rank["rls-qr"])
	}
	if rank["rls-inverse"] < rank["rls-cholesky"] {
		t.Fatalf("explicit inverse (C%d) beat Cholesky (C%d)",
			rank["rls-inverse"], rank["rls-cholesky"])
	}
}
