package workload

import (
	"fmt"

	"relperf/internal/mat"
	"relperf/internal/measure"
	"relperf/internal/xrand"
)

// This file implements the paper's concluding scenario (§V): even without
// splitting computation across devices, "the linear algebra expression in
// line 4 of Procedure 6 can alone have many different equivalent
// algorithms, each having a different sequence of calls to optimized
// libraries; typically these algorithms also show significant difference in
// performance". The three equivalent Regularized Least Squares algorithms —
// normal equations + Cholesky, augmented QR, and explicit inversion — are
// executed for real on the host and their measured wall-time distributions
// are fed to the same clustering methodology.

// KernelVariant is one mathematically-equivalent implementation of the RLS
// solve.
type KernelVariant struct {
	// Name identifies the algorithm ("rls-cholesky").
	Name string
	// Solve computes Z = argmin ‖AZ−B‖² + λ‖Z‖².
	Solve func(A, B *mat.Mat, lambda float64) (*mat.Mat, error)
	// Flops estimates the work for square size×size inputs.
	Flops func(size int) int64
}

// RLSVariants returns the three equivalent algorithms, fastest-expected
// first.
func RLSVariants() []KernelVariant {
	return []KernelVariant{
		{
			Name:  "rls-cholesky",
			Solve: mat.SolveRLS,
			Flops: func(s int) int64 { return mat.FlopsRLS(s, s, s) },
		},
		{
			Name:  "rls-qr",
			Solve: mat.SolveRLSQR,
			Flops: func(s int) int64 { return mat.FlopsRLSQR(s, s, s) },
		},
		{
			Name:  "rls-inverse",
			Solve: mat.SolveRLSInverse,
			Flops: func(s int) int64 {
				// Gram + shift + explicit inverse (LU + n solves) + two GEMMs.
				return mat.FlopsGram(s, s) + int64(s) +
					mat.FlopsLU(s) + 2*mat.FlopsTriSolve(s, s) +
					2*mat.FlopsGEMM(s, s, s)
			},
		},
	}
}

// KernelStudyConfig configures a real-execution kernel-variant measurement.
type KernelStudyConfig struct {
	// Size is the square matrix dimension (default 64).
	Size int
	// Iters is the number of solves per measurement (default 3) — batching
	// reduces timer-resolution noise.
	Iters int
	// N is the number of measurements per variant (default 30).
	N int
	// Warmup measurements are discarded (default 2).
	Warmup int
	// Lambda is the regularization (default 0.5).
	Lambda float64
	// Seed drives the input generation.
	Seed uint64
}

func (c *KernelStudyConfig) defaults() {
	if c.Size <= 0 {
		c.Size = 64
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.N <= 0 {
		c.N = 30
	}
	if c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.5
	}
}

// MeasureKernelVariants executes every RLS variant on the host, measuring
// real wall-clock time, and returns the measured distributions. All variants
// consume identical inputs per measurement (same seed-derived stream), so
// the comparison isolates the algorithm.
func MeasureKernelVariants(cfg KernelStudyConfig) (*measure.SampleSet, error) {
	cfg.defaults()
	variants := RLSVariants()
	ss := &measure.SampleSet{Workload: fmt.Sprintf("rls-variants-size%d", cfg.Size)}

	// Pre-generate the shared inputs once: the measured loop then spends
	// all its time inside the solver under test.
	inputs := make([]*mat.Mat, 2*cfg.Iters)
	rng := xrand.New(cfg.Seed)
	for i := range inputs {
		inputs[i] = mat.Rand(rng, cfg.Size, cfg.Size)
	}

	for _, v := range variants {
		v := v
		runner := func() (float64, error) {
			var solveErr error
			sec := measure.Time(func() {
				for it := 0; it < cfg.Iters; it++ {
					A, B := inputs[2*it], inputs[2*it+1]
					if _, err := v.Solve(A, B, cfg.Lambda); err != nil {
						solveErr = err
						return
					}
				}
			})
			if solveErr != nil {
				return 0, fmt.Errorf("workload: %s: %w", v.Name, solveErr)
			}
			if sec <= 0 {
				// Sub-resolution measurement: clamp to one timer tick so
				// the sample stays valid.
				sec = 1e-9
			}
			return sec, nil
		}
		sample, err := measure.Collect(v.Name, runner, measure.Options{N: cfg.N, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		ss.Samples = append(ss.Samples, sample)
	}
	return ss, nil
}

// VerifyVariantsAgree checks the mathematical equivalence of the variants on
// a fresh random instance, returning the maximum pairwise solution
// difference (max-abs). The clustering methodology requires the algorithms
// in A to be mathematically equivalent; this is the runtime witness.
func VerifyVariantsAgree(size int, lambda float64, seed uint64) (float64, error) {
	rng := xrand.New(seed)
	A := mat.Rand(rng, size, size)
	B := mat.Rand(rng, size, size)
	variants := RLSVariants()
	sols := make([]*mat.Mat, len(variants))
	for i, v := range variants {
		z, err := v.Solve(A, B, lambda)
		if err != nil {
			return 0, fmt.Errorf("workload: %s: %w", v.Name, err)
		}
		sols[i] = z
	}
	var maxDiff float64
	for i := 1; i < len(sols); i++ {
		d, err := sols[i].Sub(sols[0])
		if err != nil {
			return 0, err
		}
		if m := d.MaxAbs(); m > maxDiff {
			maxDiff = m
		}
	}
	return maxDiff, nil
}
