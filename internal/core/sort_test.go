package core

import (
	"errors"
	"math"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/xrand"
)

// Algorithm indices for the Figure 1/2 example, in the paper's initial
// sequence order S = ⟨DD, AA, DA, AD⟩.
const (
	algDD = 0
	algAA = 1
	algDA = 2
	algAD = 3
)

var fig2Names = []string{"DD", "AA", "DA", "AD"}

// fig2Comparator encodes the N=500 ground truth of Figure 1b: AD is fastest,
// AA second, DD and DA equivalent.
func fig2Comparator(i, j int) (compare.Outcome, error) {
	// speed class: smaller is faster.
	class := map[int]int{algAD: 0, algAA: 1, algDD: 2, algDA: 2}
	ci, cj := class[i], class[j]
	switch {
	case ci < cj:
		return compare.Better, nil
	case ci > cj:
		return compare.Worse, nil
	default:
		return compare.Equivalent, nil
	}
}

func TestFigure2TraceExact(t *testing.T) {
	res, err := Sort(4, fig2Comparator, SortOptions{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparisons != 6 {
		t.Fatalf("comparisons = %d, want 6", res.Comparisons)
	}

	// Final sequence per the paper:
	// ⟨(AD,1), (AA,2), (DD,3), (DA,3)⟩.
	wantOrder := []int{algAD, algAA, algDD, algDA}
	wantRanks := []int{1, 2, 3, 3}
	for i := range wantOrder {
		if res.Order[i] != wantOrder[i] {
			t.Fatalf("final order[%d] = %s, want %s (full: %v)",
				i, fig2Names[res.Order[i]], fig2Names[wantOrder[i]], res.Order)
		}
		if res.Ranks[i] != wantRanks[i] {
			t.Fatalf("final rank[%d] = %d, want %d (full: %v)", i, res.Ranks[i], wantRanks[i], res.Ranks)
		}
	}
	if res.K() != 3 {
		t.Fatalf("K = %d, want 3 performance classes", res.K())
	}

	// The six steps of the paper's Figure 2 narrative.
	type wantStep struct {
		left, right int
		outcome     compare.Outcome
		swapped     bool
		shift       int
		ranksAfter  []int
	}
	want := []wantStep{
		// Step 1: DD vs AA — DD worse, swap, no rank change.
		{algDD, algAA, compare.Worse, true, 0, []int{1, 2, 3, 4}},
		// Step 2: DD vs DA — equivalent, merge: AD's rank corrected to 3.
		{algDD, algDA, compare.Equivalent, false, -1, []int{1, 2, 2, 3}},
		// Step 3: DA vs AD — DA worse, swap; AD joins rank 2; DA merged down.
		{algDA, algAD, compare.Worse, true, -1, []int{1, 2, 2, 2}},
		// Step 4 (uneventful in the narrative): AA vs DD — AA better.
		{algAA, algDD, compare.Better, false, 0, []int{1, 2, 2, 2}},
		// Step 5 (the paper's "step 4"): DD vs AD — swap; AD reached the top
		// of its class, successors pushed to rank 3.
		{algDD, algAD, compare.Worse, true, +1, []int{1, 2, 3, 3}},
		// Step 6: AA vs AD — swap, no rank change; AD takes rank 1.
		{algAA, algAD, compare.Worse, true, 0, []int{1, 2, 3, 3}},
	}
	if len(res.Trace) != len(want) {
		t.Fatalf("trace has %d steps, want %d", len(res.Trace), len(want))
	}
	for i, w := range want {
		g := res.Trace[i]
		if g.Left != w.left || g.Right != w.right {
			t.Fatalf("step %d compared %s vs %s, want %s vs %s",
				i+1, fig2Names[g.Left], fig2Names[g.Right], fig2Names[w.left], fig2Names[w.right])
		}
		if g.Outcome != w.outcome || g.Swapped != w.swapped || g.RankShift != w.shift {
			t.Fatalf("step %d: outcome=%v swapped=%v shift=%d, want %v/%v/%d",
				i+1, g.Outcome, g.Swapped, g.RankShift, w.outcome, w.swapped, w.shift)
		}
		for k := range w.ranksAfter {
			if g.RanksAfter[k] != w.ranksAfter[k] {
				t.Fatalf("step %d ranks = %v, want %v", i+1, g.RanksAfter, w.ranksAfter)
			}
		}
	}
}

func TestSortErrors(t *testing.T) {
	if _, err := Sort(0, fig2Comparator, SortOptions{}); err != ErrNoAlgorithms {
		t.Fatal("p=0 accepted")
	}
	if _, err := Sort(3, nil, SortOptions{}); err == nil {
		t.Fatal("nil comparator accepted")
	}
	if _, err := Sort(3, fig2Comparator, SortOptions{Initial: []int{0, 1}}); err == nil {
		t.Fatal("short initial accepted")
	}
	if _, err := Sort(3, fig2Comparator, SortOptions{Initial: []int{0, 0, 1}}); err == nil {
		t.Fatal("non-permutation initial accepted")
	}
	if _, err := Sort(3, fig2Comparator, SortOptions{Initial: []int{0, 1, 5}}); err == nil {
		t.Fatal("out-of-range initial accepted")
	}
}

func TestSortComparatorErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	cmp := func(i, j int) (compare.Outcome, error) { return 0, boom }
	if _, err := Sort(3, cmp, SortOptions{}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestSortInvalidOutcomeRejected(t *testing.T) {
	cmp := func(i, j int) (compare.Outcome, error) { return compare.Outcome(42), nil }
	if _, err := Sort(2, cmp, SortOptions{}); err == nil {
		t.Fatal("invalid outcome accepted")
	}
}

func TestSortSingleAlgorithm(t *testing.T) {
	res, err := Sort(1, fig2Comparator, SortOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 || res.Order[0] != 0 || res.Comparisons != 0 {
		t.Fatalf("degenerate sort wrong: %+v", res)
	}
}

func TestSortAllEquivalent(t *testing.T) {
	cmp := func(i, j int) (compare.Outcome, error) { return compare.Equivalent, nil }
	res, err := Sort(5, cmp, SortOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() != 1 {
		t.Fatalf("all-equivalent K = %d, want 1", res.K())
	}
	if err := res.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortTotalOrder(t *testing.T) {
	// Strict total order: algorithm index IS the speed rank.
	cmp := func(i, j int) (compare.Outcome, error) {
		if i < j {
			return compare.Better, nil
		}
		if i > j {
			return compare.Worse, nil
		}
		return compare.Equivalent, nil
	}
	res, err := Sort(6, cmp, SortOptions{Initial: []int{5, 3, 1, 0, 4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for pos, a := range res.Order {
		if a != pos {
			t.Fatalf("total order not recovered: %v", res.Order)
		}
	}
	if res.K() != 6 {
		t.Fatalf("strict order K = %d, want 6", res.K())
	}
}

// latentComparator builds a consistent three-way comparator from latent
// values: Equivalent within eps, otherwise ordered (smaller = faster).
func latentComparator(vals []float64, eps float64) CompareFunc {
	return func(i, j int) (compare.Outcome, error) {
		d := vals[i] - vals[j]
		switch {
		case d < -eps:
			return compare.Better, nil
		case d > eps:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
}

func TestSortRecoversWellSeparatedGroups(t *testing.T) {
	// Three groups far apart relative to eps: the sort must recover the
	// grouping and the order regardless of the initial permutation.
	vals := []float64{10, 10.1, 20, 20.1, 30, 30.1, 9.9}
	// groups: {0,1,6}=fast, {2,3}=mid, {4,5}=slow ; eps=1.
	cmp := latentComparator(vals, 1)
	rng := xrand.New(42)
	for trial := 0; trial < 50; trial++ {
		init := rng.Perm(len(vals))
		res, err := Sort(len(vals), cmp, SortOptions{Initial: init})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.ValidateInvariants(); err != nil {
			t.Fatal(err)
		}
		if res.K() != 3 {
			t.Fatalf("trial %d: K = %d, want 3 (order %v ranks %v init %v)",
				trial, res.K(), res.Order, res.Ranks, init)
		}
		wantGroup := map[int]int{0: 1, 1: 1, 6: 1, 2: 2, 3: 2, 4: 3, 5: 3}
		for pos, a := range res.Order {
			if res.Ranks[pos] != wantGroup[a] {
				t.Fatalf("trial %d: alg %d got rank %d, want %d", trial, a, res.Ranks[pos], wantGroup[a])
			}
		}
	}
}

func TestSortInvariantsUnderRandomConsistentComparators(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		p := rng.Intn(12) + 1
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Uniform(0, 10)
		}
		eps := rng.Uniform(0, 3)
		init := rng.Perm(p)
		res, err := Sort(p, latentComparator(vals, eps), SortOptions{Initial: init})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.ValidateInvariants(); err != nil {
			t.Fatalf("trial %d (p=%d eps=%v): %v\nvals=%v order=%v ranks=%v",
				trial, p, eps, err, vals, res.Order, res.Ranks)
		}
	}
}

func TestSortInvariantsUnderIntransitiveComparator(t *testing.T) {
	// Rock-paper-scissors comparator: no consistent order exists, but the
	// sort must still terminate with structurally valid output.
	cmp := func(i, j int) (compare.Outcome, error) {
		switch (i - j + 3) % 3 {
		case 1:
			return compare.Better, nil
		case 2:
			return compare.Worse, nil
		}
		return compare.Equivalent, nil
	}
	res, err := Sort(3, cmp, SortOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSortInvariantsUnderRandomNoisyComparator(t *testing.T) {
	// Fully random outcomes: worst-case comparator instability; the
	// structural invariants must still hold.
	rng := xrand.New(13)
	for trial := 0; trial < 100; trial++ {
		p := rng.Intn(10) + 1
		cmp := func(i, j int) (compare.Outcome, error) {
			return compare.Outcome(rng.Intn(3) - 1), nil
		}
		res, err := Sort(p, cmp, SortOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.ValidateInvariants(); err != nil {
			t.Fatalf("trial %d: %v (ranks %v)", trial, err, res.Ranks)
		}
	}
}

func TestRankOfAndClusters(t *testing.T) {
	res, err := Sort(4, fig2Comparator, SortOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RankOf(algAD) != 1 || res.RankOf(algAA) != 2 || res.RankOf(algDD) != 3 || res.RankOf(algDA) != 3 {
		t.Fatalf("RankOf wrong: %v %v", res.Order, res.Ranks)
	}
	if res.RankOf(99) != 0 {
		t.Fatal("unknown algorithm should rank 0")
	}
	cl := res.Clusters()
	if len(cl) != 3 {
		t.Fatalf("clusters = %v", cl)
	}
	if len(cl[0]) != 1 || cl[0][0] != algAD {
		t.Fatalf("C1 = %v", cl[0])
	}
	if len(cl[2]) != 2 {
		t.Fatalf("C3 = %v", cl[2])
	}
}

func TestSortComparisonCount(t *testing.T) {
	// Bubble sort over p items always makes p(p-1)/2 comparisons.
	for _, p := range []int{1, 2, 3, 5, 8} {
		cmp := func(i, j int) (compare.Outcome, error) { return compare.Equivalent, nil }
		res, err := Sort(p, cmp, SortOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := p * (p - 1) / 2
		if res.Comparisons != want {
			t.Fatalf("p=%d: %d comparisons, want %d", p, res.Comparisons, want)
		}
	}
}

func TestValidateInvariantsDetectsCorruption(t *testing.T) {
	good, _ := Sort(3, fig2Comparator, SortOptions{Initial: []int{0, 1, 2}})
	if err := good.ValidateInvariants(); err != nil {
		t.Fatal(err)
	}
	bad1 := &SortResult{Order: []int{0, 0, 1}, Ranks: []int{1, 1, 2}}
	if bad1.ValidateInvariants() == nil {
		t.Fatal("duplicate order accepted")
	}
	bad2 := &SortResult{Order: []int{0, 1}, Ranks: []int{2, 3}}
	if bad2.ValidateInvariants() == nil {
		t.Fatal("first rank != 1 accepted")
	}
	bad3 := &SortResult{Order: []int{0, 1}, Ranks: []int{1, 3}}
	if bad3.ValidateInvariants() == nil {
		t.Fatal("rank jump accepted")
	}
	bad4 := &SortResult{Order: []int{0}, Ranks: []int{1, 2}}
	if bad4.ValidateInvariants() == nil {
		t.Fatal("length mismatch accepted")
	}
	empty := &SortResult{}
	if empty.ValidateInvariants() != nil {
		t.Fatal("empty result should be valid")
	}
}

func TestSortDeterministicGivenDeterministicComparator(t *testing.T) {
	a, _ := Sort(4, fig2Comparator, SortOptions{})
	b, _ := Sort(4, fig2Comparator, SortOptions{})
	for i := range a.Order {
		if a.Order[i] != b.Order[i] || a.Ranks[i] != b.Ranks[i] {
			t.Fatal("sort not deterministic")
		}
	}
}

// mathAbs avoids importing math for one call in this file's helpers.
func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
