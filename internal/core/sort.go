// Package core implements the paper's contribution: clustering a set of
// mathematically-equivalent algorithms into performance classes via a bubble
// sort whose comparator is three-way (better / worse / equivalent), and
// scoring cluster membership by repeated clustering over reshuffled inputs.
//
// The three procedures of Section III are implemented faithfully:
//
//   - Procedure 1 (SortAlgs): bubble sort driven by a three-way comparison,
//     maintaining a rank per sequence position.
//   - Procedure 2 (UpdateAlgIndices): swap on "worse".
//   - Procedure 3 (UpdateAlgRanks): merge ranks on "equivalent"; after a
//     swap, merge the displaced suffix downward when the winner already
//     belonged to the predecessor's class, or split the class upward when
//     the winner defeated a member of its own class from the top.
//   - Procedure 4 (GetCluster / Cluster): repeat the sort over shuffled
//     inputs and report per-cluster relative scores w/Rep.
//
// The semantics of the rank updates are pinned by the worked example of the
// paper's Figure 2, which TestFigure2TraceExact reproduces step by step.
//
// # Parallel clustering and the determinism contract
//
// Cluster executes its repetitions concurrently when ClusterOptions.Fork is
// set: every repetition derives its shuffle and its comparator from RNG
// streams keyed by the repetition index (xrand.Mix), results land in
// rep-indexed slots, and the aggregation happens after all repetitions
// complete — so equal seeds produce bit-identical ClusterResults at every
// worker count. ClusterMatrix additionally precomputes each pair's outcome
// distribution once (in parallel) and lets the repetitions sample outcomes
// from the cache, preserving the fractional-score semantics at a fraction
// of the comparator cost.
package core

import (
	"errors"
	"fmt"

	"relperf/internal/compare"
)

// CompareFunc compares two algorithms identified by index, returning the
// outcome for i relative to j. Implementations are typically backed by a
// measurement-based comparator (compare.Bootstrap over two samples) and may
// be stochastic.
type CompareFunc func(i, j int) (compare.Outcome, error)

// ErrNoAlgorithms is returned when a sort or clustering is requested over an
// empty set.
var ErrNoAlgorithms = errors.New("core: need at least one algorithm")

// Step records one comparison of the sort for trace rendering (the paper's
// Figure 2).
type Step struct {
	// Pass is the 1-based bubble-sort pass, Pos the 0-based left position
	// of the compared pair.
	Pass, Pos int
	// Left and Right are the algorithm indices compared (before any swap).
	Left, Right int
	// Outcome is Left's outcome relative to Right.
	Outcome compare.Outcome
	// Swapped reports whether the pair exchanged positions.
	Swapped bool
	// RankShift is the adjustment applied to the suffix starting right of
	// the pair: -1 (merge), +1 (split) or 0.
	RankShift int
	// OrderAfter and RanksAfter snapshot the sequence after the update.
	OrderAfter []int
	RanksAfter []int
}

// SortResult is the outcome of Procedure 1: the sorted order, the rank of
// every position, and optionally the full comparison trace.
type SortResult struct {
	// Order[pos] is the algorithm index at sorted position pos
	// (best first).
	Order []int
	// Ranks[pos] is the 1-based performance class of position pos. Ranks
	// are non-decreasing along the sequence and adjacent positions differ
	// by at most 1.
	Ranks []int
	// Comparisons counts comparator invocations.
	Comparisons int
	// Trace holds per-comparison records when tracing was requested.
	Trace []Step
}

// K returns the number of performance classes.
func (r *SortResult) K() int {
	if len(r.Ranks) == 0 {
		return 0
	}
	return r.Ranks[len(r.Ranks)-1]
}

// RankOf returns the rank assigned to the given algorithm index, or 0 when
// the algorithm is not present.
func (r *SortResult) RankOf(alg int) int {
	for pos, a := range r.Order {
		if a == alg {
			return r.Ranks[pos]
		}
	}
	return 0
}

// Clusters groups the sorted algorithms by rank: element r-1 lists the
// algorithm indices of class r in sequence order.
func (r *SortResult) Clusters() [][]int {
	out := make([][]int, r.K())
	for pos, a := range r.Order {
		k := r.Ranks[pos] - 1
		out[k] = append(out[k], a)
	}
	return out
}

// SortOptions configures Procedure 1.
type SortOptions struct {
	// Initial is the starting sequence (algorithm indices); nil means
	// 0..p-1. Procedure 4 shuffles this between repetitions.
	Initial []int
	// RecordTrace captures per-comparison Steps (costs allocations).
	RecordTrace bool
}

// Sort runs Procedure 1 over p algorithms using cmp as the three-way
// comparison. The initial ranks are 1..p (line 2 of Procedure 1); every
// comparison applies Procedure 2 (index update) and Procedure 3 (rank
// update).
func Sort(p int, cmp CompareFunc, opts SortOptions) (*SortResult, error) {
	if p <= 0 {
		return nil, ErrNoAlgorithms
	}
	if cmp == nil {
		return nil, errors.New("core: nil compare function")
	}
	order := make([]int, p)
	if opts.Initial != nil {
		if len(opts.Initial) != p {
			return nil, fmt.Errorf("core: initial sequence has %d entries for %d algorithms", len(opts.Initial), p)
		}
		seen := make([]bool, p)
		for _, a := range opts.Initial {
			if a < 0 || a >= p || seen[a] {
				return nil, fmt.Errorf("core: initial sequence is not a permutation of 0..%d", p-1)
			}
			seen[a] = true
		}
		copy(order, opts.Initial)
	} else {
		for i := range order {
			order[i] = i
		}
	}
	ranks := make([]int, p)
	for i := range ranks {
		ranks[i] = i + 1
	}
	res := &SortResult{Order: order, Ranks: ranks}

	for pass := 1; pass <= p; pass++ {
		// Bubble pass: positions 0..p-pass-1, left to right, per the loop
		// bounds of Procedure 1 (j = 0..p-i-1).
		for j := 0; j+1 < p && j < p-pass; j++ {
			left, right := order[j], order[j+1]
			outcome, err := cmp(left, right)
			if err != nil {
				return nil, fmt.Errorf("core: comparing alg %d vs %d: %w", left, right, err)
			}
			res.Comparisons++
			swapped := false
			shift := 0

			switch outcome {
			case compare.Worse:
				// Procedure 2: the worse algorithm moves right; ranks stay
				// attached to positions.
				order[j], order[j+1] = order[j+1], order[j]
				swapped = true
				// Procedure 3, swapped case. The winner now sits at j.
				samePred := j > 0 && ranks[j] == ranks[j-1]
				sameSucc := ranks[j] == ranks[j+1]
				switch {
				case samePred && !sameSucc:
					// The winner belongs to the predecessor's class, so the
					// displaced loser's class merges downward.
					shift = -1
				case sameSucc && !samePred:
					// The winner defeated a member of its own class from
					// the top (a missing predecessor counts as a different
					// class): the rest of the class is pushed down.
					shift = +1
				}
			case compare.Equivalent:
				// Procedure 3, merge case: equivalent neighbours must share
				// a rank.
				if ranks[j] != ranks[j+1] {
					shift = -1
				}
			case compare.Better:
				// No index or rank update.
			default:
				return nil, fmt.Errorf("core: comparator returned invalid outcome %v", outcome)
			}

			if shift != 0 {
				for k := j + 1; k < p; k++ {
					ranks[k] += shift
				}
			}

			if opts.RecordTrace {
				res.Trace = append(res.Trace, Step{
					Pass: pass, Pos: j,
					Left: left, Right: right,
					Outcome: outcome, Swapped: swapped, RankShift: shift,
					OrderAfter: append([]int(nil), order...),
					RanksAfter: append([]int(nil), ranks...),
				})
			}
		}
	}
	return res, nil
}

// ValidateInvariants checks the structural invariants every sort result must
// satisfy; the property tests and the clustering layer rely on them.
func (r *SortResult) ValidateInvariants() error {
	p := len(r.Order)
	if len(r.Ranks) != p {
		return fmt.Errorf("core: order/ranks length mismatch %d/%d", p, len(r.Ranks))
	}
	if p == 0 {
		return nil
	}
	seen := make([]bool, p)
	for _, a := range r.Order {
		if a < 0 || a >= p || seen[a] {
			return fmt.Errorf("core: order is not a permutation")
		}
		seen[a] = true
	}
	if r.Ranks[0] != 1 {
		return fmt.Errorf("core: first rank is %d, want 1", r.Ranks[0])
	}
	for i := 1; i < p; i++ {
		d := r.Ranks[i] - r.Ranks[i-1]
		if d != 0 && d != 1 {
			return fmt.Errorf("core: rank step %d at position %d", d, i)
		}
	}
	return nil
}
