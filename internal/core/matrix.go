package core

import (
	"context"
	"fmt"

	"relperf/internal/compare"
	"relperf/internal/pool"
	"relperf/internal/xrand"
)

// MatrixOptions configures ClusterMatrix.
type MatrixOptions struct {
	// Reps is the number of sort repetitions (default 100), as in
	// ClusterOptions.
	Reps int
	// Trials is the maximum number of comparator evaluations per unordered
	// pair used to estimate the pair's outcome distribution (default 32).
	// More trials sharpen the estimated Better/Equivalent/Worse frequencies
	// at linear cost in the P·(P−1)/2 pre-pass. A pair whose outcomes are
	// unanimous after minSaturationTrials stops early (adaptive trials):
	// its empirical distribution is already a point mass.
	Trials int
	// Workers bounds concurrency for both the pair pre-pass and the sort
	// repetitions; 0 means GOMAXPROCS.
	Workers int
	// Seed keys every stream: pair trials, repetition shuffles and the
	// per-repetition outcome sampling.
	Seed uint64
	// Fork returns an independent comparison function seeded by seed;
	// required. It is invoked once per pair during the pre-pass.
	Fork func(seed uint64) CompareFunc
	// Pool optionally shares a global worker budget; see
	// ClusterOptions.Pool.
	Pool *pool.Pool
	// Ctx cancels the pre-pass and the repetitions; nil means Background.
	Ctx context.Context
}

// DefaultMatrixTrials is the per-pair trial cap applied when
// MatrixOptions.Trials is unset. The config-fingerprinting layer
// normalizes with the same constant so "unset" and "explicit default"
// configs share one cache identity — change it here, never by
// re-hardcoding 32 elsewhere.
const DefaultMatrixTrials = 32

// minSaturationTrials is the adaptive pre-pass floor: a pair's trial loop
// may stop early only after this many trials, and only when every trial so
// far returned the same outcome. Truly degenerate pairs (the clearly-ordered
// majority in a typical placement set) pay 8 trials instead of the full
// budget with no change to their estimate. The saving is not free for
// near-degenerate pairs: one whose true majority-outcome rate is p < 1
// produces a unanimous 8-prefix with probability p^8 (≈10% at p = 0.75)
// and then freezes at a point mass, losing its minority mass for every
// repetition — acceptable for the clustering's fractional-score semantics,
// where such pairs carry little of the score mass, but a bias to know
// about. The rule depends only on the pair's own keyed outcome stream, so
// determinism at any worker count is preserved.
const minSaturationTrials = 8

// pairDist is the estimated categorical outcome distribution of one ordered
// pair (i, j) with i < j; the Worse probability is the remainder.
type pairDist struct {
	better, equivalent float64
}

// ClusterMatrix is the precomputed-pairwise-statistics variant of Cluster:
// instead of invoking the (expensive, bootstrap-backed) comparator on every
// comparison of every repetition, it evaluates each of the P·(P−1)/2 pairs
// Trials times up front — in parallel, each pair on its own keyed comparator
// stream — and records the empirical frequency of Better / Equivalent /
// Worse. The sort repetitions then sample per-comparison outcomes from the
// cached distribution, which preserves the paper's fractional-score
// semantics (a pair that is "equivalent once in every three comparisons"
// keeps flipping at the cached rate) while making each repetition nearly
// free. Equal seeds produce bit-identical results at any worker count.
//
// Two approximations relative to Cluster: outcome draws within a
// repetition are independent across comparisons of the same pair, whereas
// a live bootstrap comparator re-resamples the same measurements (with the
// full 32-trial budget the estimated rates are within a few percent of the
// live frequencies); and the adaptive pre-pass may stop a pair early on a
// unanimous prefix, which can round a strong-but-not-certain majority up
// to a point mass — see minSaturationTrials for the probability bound.
func ClusterMatrix(p int, opts MatrixOptions) (*ClusterResult, error) {
	if p <= 0 {
		return nil, ErrNoAlgorithms
	}
	if opts.Fork == nil {
		return nil, fmt.Errorf("core: ClusterMatrix requires Fork")
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = DefaultMatrixTrials
	}
	dists, err := pairOutcomeDists(p, trials, opts)
	if err != nil {
		return nil, err
	}

	// Each repetition samples outcomes from the cached distributions with
	// its own keyed stream, reusing Cluster's deterministic parallel
	// engine. One uniform draw decides one comparison.
	clusterSeed := xrand.Mix(opts.Seed, 2)
	fork := func(seed uint64) CompareFunc {
		rng := xrand.New(seed)
		return func(i, j int) (compare.Outcome, error) {
			flip := i > j
			if flip {
				i, j = j, i
			}
			d := dists[pairIndex(p, i, j)]
			u := rng.Float64()
			o := compare.Worse
			switch {
			case u < d.better:
				o = compare.Better
			case u < d.better+d.equivalent:
				o = compare.Equivalent
			}
			if flip {
				o = o.Flip()
			}
			return o, nil
		}
	}
	return Cluster(p, nil, ClusterOptions{
		Reps:    opts.Reps,
		Seed:    clusterSeed,
		Workers: opts.Workers,
		Fork:    fork,
		Pool:    opts.Pool,
		Ctx:     opts.Ctx,
	})
}

// pairIndex maps an ordered pair (i, j) with i < j to its position in the
// packed upper-triangular pair list.
func pairIndex(p, i, j int) int {
	return i*(2*p-i-1)/2 + (j - i - 1)
}

// pairOutcomeDists runs the pre-pass: every unordered pair is compared
// Trials times on a comparator forked with the pair's keyed seed, and the
// outcome frequencies are recorded. Pairs are distributed over a worker
// pool; the result is indexed by pairIndex, so aggregation order is
// irrelevant.
func pairOutcomeDists(p, trials int, opts MatrixOptions) ([]pairDist, error) {
	nPairs := p * (p - 1) / 2
	dists := make([]pairDist, nPairs)
	pairSeed := xrand.Mix(opts.Seed, 1)
	err := forEach(opts.Ctx, opts.Pool, nPairs, opts.Workers, func(k int) error {
		i, j := pairFromIndex(p, k)
		cmp := opts.Fork(xrand.Mix(pairSeed, uint64(k)))
		var better, equiv, executed int
		for t := 0; t < trials; t++ {
			o, err := cmp(i, j)
			if err != nil {
				return fmt.Errorf("core: pair (%d,%d) trial %d: %w", i, j, t, err)
			}
			switch o {
			case compare.Better:
				better++
			case compare.Equivalent:
				equiv++
			}
			executed++
			// Adaptive early exit on a unanimous prefix past the floor; see
			// minSaturationTrials for the accuracy trade-off this accepts.
			if executed >= minSaturationTrials &&
				(better == executed || equiv == executed || better+equiv == 0) {
				break
			}
		}
		dists[k] = pairDist{
			better:     float64(better) / float64(executed),
			equivalent: float64(equiv) / float64(executed),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dists, nil
}

// pairFromIndex inverts pairIndex.
func pairFromIndex(p, k int) (int, int) {
	for i := 0; i < p-1; i++ {
		row := p - 1 - i
		if k < row {
			return i, i + 1 + k
		}
		k -= row
	}
	panic("core: pair index out of range")
}
