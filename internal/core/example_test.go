package core_test

import (
	"fmt"

	"relperf/internal/compare"
	"relperf/internal/core"
)

// ExampleSort replays the paper's Figure-2 illustration: four algorithms
// (DD, AA, DA, AD) with ground truth "AD fastest, AA second, DD ~ DA" are
// sorted with the three-way comparator.
func ExampleSort() {
	names := []string{"DD", "AA", "DA", "AD"}
	class := []int{2, 1, 2, 0} // smaller = faster
	cmp := func(i, j int) (compare.Outcome, error) {
		switch {
		case class[i] < class[j]:
			return compare.Better, nil
		case class[i] > class[j]:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
	res, err := core.Sort(4, cmp, core.SortOptions{})
	if err != nil {
		panic(err)
	}
	for pos, alg := range res.Order {
		if pos > 0 {
			fmt.Print(" ")
		}
		fmt.Printf("(%s,%d)", names[alg], res.Ranks[pos])
	}
	fmt.Printf("\nclasses: %d\n", res.K())
	// Output:
	// (AD,1) (AA,2) (DD,3) (DA,3)
	// classes: 3
}

// ExampleCluster computes relative scores over repeated shuffled sorts with
// a deterministic comparator: every algorithm lands its class with score 1.
func ExampleCluster() {
	class := []int{2, 1, 2, 0}
	cmp := func(i, j int) (compare.Outcome, error) {
		switch {
		case class[i] < class[j]:
			return compare.Better, nil
		case class[i] > class[j]:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
	res, err := core.Cluster(4, cmp, core.ClusterOptions{Reps: 50, Seed: 1})
	if err != nil {
		panic(err)
	}
	names := []string{"DD", "AA", "DA", "AD"}
	for r := 1; r <= res.K; r++ {
		members, _ := res.GetCluster(r)
		fmt.Printf("C%d:", r)
		for _, m := range members {
			fmt.Printf(" %s(%.2f)", names[m.Alg], m.Score)
		}
		fmt.Println()
	}
	// Output:
	// C1: AD(1.00)
	// C2: AA(1.00)
	// C3: DD(1.00) DA(1.00)
}
