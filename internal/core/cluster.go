package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"relperf/internal/pool"
	"relperf/internal/xrand"
)

// ClusterOptions configures Procedure 4.
type ClusterOptions struct {
	// Reps is the number of shuffled sort repetitions (the paper's Rep);
	// default 100. The measurements are NOT re-collected between
	// repetitions (paper footnote 5) — only the initial order and the
	// comparator's internal bootstrap randomness vary.
	Reps int
	// Seed drives the shuffles; on the legacy serial path the comparator's
	// own randomness is whatever the caller built into cmp, while on the
	// Fork path it also keys the per-repetition comparator streams.
	Seed uint64
	// Workers bounds the number of concurrent repetitions; 0 means
	// GOMAXPROCS. Parallel execution requires Fork; without it repetitions
	// share cmp and must run serially.
	Workers int
	// Fork returns an independent comparison function for one repetition,
	// fully determined by seed. When set, every repetition — at any worker
	// count, including 1 — derives its shuffle and its comparator from
	// per-repetition keyed streams (xrand.Mix of Seed and the repetition
	// index), so equal seeds produce bit-identical ClusterResults
	// regardless of Workers. When nil, the legacy serial path is used and
	// cmp is shared across repetitions.
	Fork func(seed uint64) CompareFunc
	// Pool, when non-nil, routes every repetition through a shared global
	// worker budget instead of a transient pool of Workers goroutines, so
	// concurrent clustering stages of many studies collectively respect one
	// concurrency bound. Results are identical either way. Only the Fork
	// path consults it: the legacy serial path (nil Fork) runs on the
	// caller's goroutine without acquiring budget tokens.
	Pool *pool.Pool
	// Ctx cancels the clustering stage early (fleet shutdown); nil means
	// Background. Cancellation aborts with the context's error — it never
	// yields a partial result.
	Ctx context.Context
}

// Membership is one algorithm's relative score with respect to a cluster.
// The JSON tags define the machine-readable wire format served by the
// fleet daemon and persisted in result snapshots.
type Membership struct {
	// Alg is the algorithm index.
	Alg int `json:"alg"`
	// Score is w/Rep: the fraction of repetitions assigning Alg this rank.
	Score float64 `json:"score"`
}

// ClusterResult is the outcome of Procedure 4 over all ranks.
type ClusterResult struct {
	// P is the number of algorithms, Reps the repetitions performed.
	P    int `json:"p"`
	Reps int `json:"reps"`
	// Scores[alg][r-1] is the relative score of algorithm alg for rank r.
	// Rows sum to 1 (every repetition assigns exactly one rank).
	Scores [][]float64 `json:"scores"`
	// Clusters[r-1] lists, in decreasing score order, the algorithms that
	// obtained rank r in at least one repetition — the paper's
	// GetCluster(A, Rep, r) output.
	Clusters [][]Membership `json:"clusters"`
	// K is the largest rank observed in any repetition.
	K int `json:"k"`
	// MeanK is the average cluster count across repetitions.
	MeanK float64 `json:"mean_k"`
}

// Cluster repeats Procedure 1 Reps times over shuffled initial sequences and
// aggregates the rank assignments into relative scores (Procedure 4 for
// every rank at once).
//
// When opts.Fork is set the repetitions are independent work units: each
// derives its shuffle and its comparator from streams keyed by the
// repetition index, and they execute on a pool of opts.Workers goroutines
// with ordered result collection. The output is bit-identical for equal
// (p, Reps, Seed, Fork) at every worker count.
func Cluster(p int, cmp CompareFunc, opts ClusterOptions) (*ClusterResult, error) {
	if p <= 0 {
		return nil, ErrNoAlgorithms
	}
	if cmp == nil && opts.Fork == nil {
		return nil, errors.New("core: nil compare function")
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 100
	}
	counts := make([][]int, p)
	for i := range counts {
		counts[i] = make([]int, p) // rank r stored at r-1; ranks never exceed p
	}
	res := &ClusterResult{P: p, Reps: reps}
	var sumK int
	accumulate := func(sr *SortResult) {
		for pos, alg := range sr.Order {
			r := sr.Ranks[pos]
			counts[alg][r-1]++
			if r > res.K {
				res.K = r
			}
		}
		sumK += sr.K()
	}
	if opts.Fork != nil {
		results, err := runRepsParallel(p, reps, opts)
		if err != nil {
			return nil, err
		}
		for _, sr := range results {
			accumulate(sr)
		}
	} else {
		ctx := opts.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		rng := xrand.New(opts.Seed)
		initial := make([]int, p)
		for i := range initial {
			initial[i] = i
		}
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rng.ShuffleInts(initial)
			sr, err := Sort(p, cmp, SortOptions{Initial: initial})
			if err != nil {
				return nil, fmt.Errorf("core: clustering repetition %d: %w", rep, err)
			}
			accumulate(sr)
		}
	}
	res.MeanK = float64(sumK) / float64(reps)

	res.Scores = make([][]float64, p)
	for a := 0; a < p; a++ {
		res.Scores[a] = make([]float64, res.K)
		for r := 0; r < res.K; r++ {
			res.Scores[a][r] = float64(counts[a][r]) / float64(reps)
		}
	}
	res.Clusters = make([][]Membership, res.K)
	for r := 0; r < res.K; r++ {
		for a := 0; a < p; a++ {
			if counts[a][r] > 0 {
				res.Clusters[r] = append(res.Clusters[r], Membership{Alg: a, Score: res.Scores[a][r]})
			}
		}
		sort.SliceStable(res.Clusters[r], func(i, j int) bool {
			return res.Clusters[r][i].Score > res.Clusters[r][j].Score
		})
	}
	return res, nil
}

// runRepsParallel executes the clustering repetitions on a bounded worker
// pool. Repetition rep shuffles with the stream keyed by 2·rep and forks its
// comparator with the seed keyed by 2·rep+1, so no randomness flows between
// repetitions and the per-repetition results do not depend on scheduling.
// Results are collected into a rep-indexed slice (ordered collection); the
// first error in repetition order wins.
func runRepsParallel(p, reps int, opts ClusterOptions) ([]*SortResult, error) {
	results := make([]*SortResult, reps)
	err := forEach(opts.Ctx, opts.Pool, reps, opts.Workers, func(rep int) error {
		rng := xrand.NewKeyed(opts.Seed, uint64(2*rep))
		cmp := opts.Fork(xrand.Mix(opts.Seed, uint64(2*rep+1)))
		sr, err := Sort(p, cmp, SortOptions{Initial: rng.Perm(p)})
		if err != nil {
			return fmt.Errorf("core: clustering repetition %d: %w", rep, err)
		}
		results[rep] = sr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEach routes a fan-out through the shared pool when one is configured,
// and through a transient pool of the given width otherwise.
func forEach(ctx context.Context, p *pool.Pool, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if p != nil {
		return p.ForEach(ctx, n, fn)
	}
	return pool.ForEachCtx(ctx, n, workers, fn)
}

// GetCluster returns Procedure 4's output for a single rank r (1-based): the
// algorithms that obtained rank r in at least one repetition, with their
// relative scores, in decreasing score order.
func (c *ClusterResult) GetCluster(r int) ([]Membership, error) {
	if r < 1 || r > c.K {
		return nil, fmt.Errorf("core: rank %d outside 1..%d", r, c.K)
	}
	return c.Clusters[r-1], nil
}

// FinalAssignment resolves the fractional memberships of Procedure 4 into
// one cluster per algorithm, per the end of Section III: each algorithm goes
// to the rank where it scored highest (earliest rank on ties), and its final
// score cumulates the scores of that rank and all better ranks.
type FinalAssignment struct {
	// Rank[alg] is the compacted 1-based final class of the algorithm.
	Rank []int `json:"rank"`
	// Score[alg] is the cumulated relative score.
	Score []float64 `json:"score"`
	// K is the number of distinct final classes.
	K int `json:"k"`
	// Classes[r-1] lists the algorithms of final class r in decreasing
	// score order.
	Classes [][]Membership `json:"classes"`
}

// Finalize computes the max-score assignment with score cumulation.
func (c *ClusterResult) Finalize() (*FinalAssignment, error) {
	if c.P == 0 {
		return nil, ErrNoAlgorithms
	}
	rawRank := make([]int, c.P)
	score := make([]float64, c.P)
	for a := 0; a < c.P; a++ {
		best, bestScore := -1, 0.0
		for r := 0; r < c.K; r++ {
			if s := c.Scores[a][r]; s > bestScore {
				best, bestScore = r, s
			}
		}
		if best < 0 {
			return nil, errors.New("core: algorithm with no rank assignments")
		}
		rawRank[a] = best + 1
		// Cumulate scores from better (smaller) ranks into the final score.
		var cum float64
		for r := 0; r <= best; r++ {
			cum += c.Scores[a][r]
		}
		score[a] = cum
	}

	// Compact the chosen raw ranks to 1..K preserving order.
	distinct := map[int]bool{}
	for _, r := range rawRank {
		distinct[r] = true
	}
	sorted := make([]int, 0, len(distinct))
	for r := range distinct {
		sorted = append(sorted, r)
	}
	sort.Ints(sorted)
	remap := make(map[int]int, len(sorted))
	for i, r := range sorted {
		remap[r] = i + 1
	}

	fa := &FinalAssignment{
		Rank:  make([]int, c.P),
		Score: score,
		K:     len(sorted),
	}
	fa.Classes = make([][]Membership, fa.K)
	for a := 0; a < c.P; a++ {
		fr := remap[rawRank[a]]
		fa.Rank[a] = fr
		fa.Classes[fr-1] = append(fa.Classes[fr-1], Membership{Alg: a, Score: score[a]})
	}
	for r := range fa.Classes {
		sort.SliceStable(fa.Classes[r], func(i, j int) bool {
			return fa.Classes[r][i].Score > fa.Classes[r][j].Score
		})
	}
	return fa, nil
}
