package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/xrand"
)

// forkableScores adapts the Section-III scores comparator into a Fork: each
// seed yields an independent deterministic stream over the same ground
// truth.
func forkableScores(seed uint64) CompareFunc {
	return scoresComparator(seed)
}

func TestPairIndexRoundTrip(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 13} {
		k := 0
		for i := 0; i < p-1; i++ {
			for j := i + 1; j < p; j++ {
				if got := pairIndex(p, i, j); got != k {
					t.Fatalf("pairIndex(%d,%d,%d) = %d, want %d", p, i, j, got, k)
				}
				gi, gj := pairFromIndex(p, k)
				if gi != i || gj != j {
					t.Fatalf("pairFromIndex(%d,%d) = (%d,%d), want (%d,%d)", p, k, gi, gj, i, j)
				}
				k++
			}
		}
	}
}

func TestClusterMatrixWorkerDeterminism(t *testing.T) {
	run := func(workers int) *ClusterResult {
		cr, err := ClusterMatrix(4, MatrixOptions{
			Reps: 50, Trials: 24, Workers: workers, Seed: 9, Fork: forkableScores,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	ref := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.K != ref.K || got.MeanK != ref.MeanK {
			t.Fatalf("workers=%d meta differs: %+v vs %+v", w, got, ref)
		}
		for a := range ref.Scores {
			for r := range ref.Scores[a] {
				if got.Scores[a][r] != ref.Scores[a][r] {
					t.Fatalf("workers=%d score[%d][%d] differs", w, a, r)
				}
			}
		}
	}
}

func TestClusterMatrixPreservesFractionalScores(t *testing.T) {
	// The AD-vs-AA pair is equivalent once in three comparisons; the cached
	// distribution must keep AD's and AA's rank-1 mass fractional, like the
	// live path.
	cr, err := ClusterMatrix(4, MatrixOptions{
		Reps: 400, Trials: 120, Seed: 3, Fork: forkableScores,
	})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		var sum float64
		for r := 0; r < cr.K; r++ {
			sum += cr.Scores[a][r]
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Fatalf("scores of alg %d sum to %v", a, sum)
		}
	}
	// AD leads C1 always; AA lands in C1 roughly 1/3 of the time.
	if !almostEq(cr.Scores[algAD][0], 1.0, 1e-9) {
		t.Fatalf("AD rank-1 score = %v, want 1.0", cr.Scores[algAD][0])
	}
	aa := cr.Scores[algAA][0]
	if aa < 0.15 || aa > 0.55 {
		t.Fatalf("AA rank-1 score = %v, want fractional near 1/3", aa)
	}
}

// TestClusterMatrixAdaptiveTrials: a clearly-ordered pair saturates after
// the minimum trial floor and stops paying for the full budget, while a
// mixed-outcome pair runs to the cap. Both remain deterministic.
func TestClusterMatrixAdaptiveTrials(t *testing.T) {
	const trials = 64
	var unanimousCalls, mixedCalls int64
	fork := func(seed uint64) CompareFunc {
		rng := xrand.New(seed)
		return func(i, j int) (compare.Outcome, error) {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo == 0 && hi == 1 {
				atomic.AddInt64(&unanimousCalls, 1)
				if i < j {
					return compare.Better, nil
				}
				return compare.Worse, nil
			}
			atomic.AddInt64(&mixedCalls, 1)
			if rng.Bernoulli(0.5) {
				return compare.Equivalent, nil
			}
			if i < j {
				return compare.Better, nil
			}
			return compare.Worse, nil
		}
	}
	if _, err := ClusterMatrix(3, MatrixOptions{Reps: 5, Trials: trials, Seed: 17, Fork: fork}); err != nil {
		t.Fatal(err)
	}
	if unanimousCalls != minSaturationTrials {
		t.Fatalf("unanimous pair ran %d trials, want early stop at %d", unanimousCalls, minSaturationTrials)
	}
	// Two mixed pairs: (0,2) and (1,2). A run of 8 equal outcomes is
	// possible but did not occur for this seed; the point is the cap.
	if mixedCalls != 2*trials {
		t.Fatalf("mixed pairs ran %d trials, want %d (no early stop)", mixedCalls, 2*trials)
	}
}

func TestClusterMatrixValidation(t *testing.T) {
	if _, err := ClusterMatrix(0, MatrixOptions{Fork: forkableScores}); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := ClusterMatrix(3, MatrixOptions{}); err == nil {
		t.Fatal("nil Fork accepted")
	}
}

func TestClusterMatrixPairErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	fork := func(seed uint64) CompareFunc {
		return func(i, j int) (compare.Outcome, error) {
			if i == 1 && j == 2 {
				return compare.Equivalent, boom
			}
			return compare.Equivalent, nil
		}
	}
	if _, err := ClusterMatrix(4, MatrixOptions{Reps: 10, Trials: 4, Seed: 1, Fork: fork}); !errors.Is(err, boom) {
		t.Fatalf("pair error not propagated: %v", err)
	}
}

func TestClusterForkErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	fork := func(seed uint64) CompareFunc {
		return func(i, j int) (compare.Outcome, error) { return compare.Equivalent, boom }
	}
	if _, err := Cluster(4, nil, ClusterOptions{Reps: 8, Workers: 4, Fork: fork}); !errors.Is(err, boom) {
		t.Fatalf("repetition error not propagated: %v", err)
	}
}

func TestClusterNilCmpAndForkRejected(t *testing.T) {
	if _, err := Cluster(3, nil, ClusterOptions{Reps: 5}); err == nil {
		t.Fatal("nil cmp without Fork accepted")
	}
}

func TestClusterForkSingleAlgorithm(t *testing.T) {
	fork := func(seed uint64) CompareFunc {
		return func(i, j int) (compare.Outcome, error) { return compare.Equivalent, nil }
	}
	cr, err := Cluster(1, nil, ClusterOptions{Reps: 5, Fork: fork})
	if err != nil {
		t.Fatal(err)
	}
	if cr.K != 1 || cr.Scores[0][0] != 1 {
		t.Fatalf("single-algorithm clustering wrong: %+v", cr)
	}
	cm, err := ClusterMatrix(1, MatrixOptions{Reps: 5, Fork: fork})
	if err != nil {
		t.Fatal(err)
	}
	if cm.K != 1 {
		t.Fatalf("single-algorithm matrix clustering wrong: %+v", cm)
	}
}

// TestForkedBootstrapAgainstSerial: clustering measured-style data with
// forked bootstrap comparators yields the same class structure as the
// legacy serial path on clearly separated inputs.
func TestForkedBootstrapAgainstSerial(t *testing.T) {
	rng := xrand.New(31)
	data := make([][]float64, 4)
	for i := range data {
		m := 1 + 0.5*float64(i)
		data[i] = make([]float64, 25)
		for j := range data[i] {
			data[i][j] = m * rng.LogNormal(0, 0.03)
		}
	}
	proto := compare.NewBootstrap(0)
	fork := func(seed uint64) CompareFunc {
		c := proto.Fork(seed)
		return func(i, j int) (compare.Outcome, error) { return c.Compare(data[i], data[j]) }
	}
	parallel, err := Cluster(4, nil, ClusterOptions{Reps: 30, Seed: 2, Workers: 4, Fork: fork})
	if err != nil {
		t.Fatal(err)
	}
	serialCmp := compare.NewBootstrap(3)
	cf := func(i, j int) (compare.Outcome, error) { return serialCmp.Compare(data[i], data[j]) }
	serial, err := Cluster(4, cf, ClusterOptions{Reps: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if parallel.K != serial.K {
		t.Fatalf("class counts differ on separated data: parallel %d, serial %d", parallel.K, serial.K)
	}
	for a := 0; a < 4; a++ {
		if parallel.Scores[a][a] != 1 || serial.Scores[a][a] != 1 {
			t.Fatalf("separated data not cleanly ranked: parallel %v serial %v", parallel.Scores[a], serial.Scores[a])
		}
	}
}
