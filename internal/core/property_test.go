package core

import (
	"testing"
	"testing/quick"

	"relperf/internal/compare"
	"relperf/internal/xrand"
)

// TestClusterScoresPartitionProperty: for arbitrary stochastic (but valid)
// comparators, each algorithm's scores across ranks sum to exactly 1 — every
// repetition assigns exactly one rank.
func TestClusterScoresPartitionProperty(t *testing.T) {
	rng := xrand.New(101)
	f := func(seed uint32) bool {
		p := rng.Intn(8) + 1
		flip := rng.Float64() * 0.5
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Uniform(0, 10)
		}
		inner := xrand.New(uint64(seed))
		cmp := func(i, j int) (compare.Outcome, error) {
			if inner.Bernoulli(flip) {
				return compare.Equivalent, nil
			}
			switch {
			case vals[i] < vals[j]-1:
				return compare.Better, nil
			case vals[i] > vals[j]+1:
				return compare.Worse, nil
			default:
				return compare.Equivalent, nil
			}
		}
		res, err := Cluster(p, cmp, ClusterOptions{Reps: 20, Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		for a := 0; a < p; a++ {
			var sum float64
			for r := 0; r < res.K; r++ {
				sum += res.Scores[a][r]
			}
			if sum < 1-1e-9 || sum > 1+1e-9 {
				return false
			}
		}
		// Every cluster listed is non-empty and in score order.
		for r := 0; r < res.K; r++ {
			for i := 1; i < len(res.Clusters[r]); i++ {
				if res.Clusters[r][i].Score > res.Clusters[r][i-1].Score {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFinalizeBoundsProperty: final ranks are within 1..K, scores within
// (0, 1], and the classes listing partitions the algorithms.
func TestFinalizeBoundsProperty(t *testing.T) {
	rng := xrand.New(103)
	f := func(seed uint32) bool {
		p := rng.Intn(8) + 1
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Uniform(0, 5)
		}
		inner := xrand.New(uint64(seed))
		cmp := func(i, j int) (compare.Outcome, error) {
			noise := inner.Normal(0, 0.5)
			d := vals[i] - vals[j] + noise
			switch {
			case d < -0.8:
				return compare.Better, nil
			case d > 0.8:
				return compare.Worse, nil
			default:
				return compare.Equivalent, nil
			}
		}
		res, err := Cluster(p, cmp, ClusterOptions{Reps: 15, Seed: uint64(seed) * 3})
		if err != nil {
			return false
		}
		fa, err := res.Finalize()
		if err != nil {
			return false
		}
		seen := 0
		for r, class := range fa.Classes {
			for _, m := range class {
				if fa.Rank[m.Alg] != r+1 {
					return false
				}
				seen++
			}
		}
		if seen != p {
			return false
		}
		for a := 0; a < p; a++ {
			if fa.Rank[a] < 1 || fa.Rank[a] > fa.K {
				return false
			}
			if fa.Score[a] <= 0 || fa.Score[a] > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSortBestAlgorithmReachesTopProperty: with a strict consistent total
// order the minimum-value algorithm always ends at position 0 with rank 1.
func TestSortBestAlgorithmReachesTopProperty(t *testing.T) {
	rng := xrand.New(107)
	f := func(seed uint32) bool {
		p := rng.Intn(10) + 2
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Uniform(0, 100)
		}
		best := 0
		for i, v := range vals {
			if v < vals[best] {
				best = i
			}
		}
		init := rng.Perm(p)
		res, err := Sort(p, latentComparator(vals, 0), SortOptions{Initial: init})
		if err != nil {
			return false
		}
		return res.Order[0] == best && res.Ranks[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
