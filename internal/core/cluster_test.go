package core

import (
	"testing"

	"relperf/internal/compare"
	"relperf/internal/xrand"
)

// scoresComparator models the Section III relative-score example: the same
// ground truth as Figure 2, but at N=30 the AD-vs-AA comparison evaluates
// "equivalent" once in every three comparisons, and the DD-vs-DA pair is
// mostly equivalent with occasional splits.
func scoresComparator(seed uint64) CompareFunc {
	rng := xrand.New(seed)
	class := map[int]int{algAD: 0, algAA: 1, algDD: 2, algDA: 2}
	return func(i, j int) (compare.Outcome, error) {
		ci, cj := class[i], class[j]
		// The borderline pair: AD vs AA.
		if (i == algAD && j == algAA) || (i == algAA && j == algAD) {
			if rng.Bernoulli(1.0 / 3.0) {
				return compare.Equivalent, nil
			}
			if i == algAD {
				return compare.Better, nil
			}
			return compare.Worse, nil
		}
		// The overlapping pair: DD vs DA, equivalent 70% of the time with
		// DD slightly ahead otherwise.
		if (i == algDD && j == algDA) || (i == algDA && j == algDD) {
			if rng.Bernoulli(0.7) {
				return compare.Equivalent, nil
			}
			if i == algDD {
				return compare.Better, nil
			}
			return compare.Worse, nil
		}
		switch {
		case ci < cj:
			return compare.Better, nil
		case ci > cj:
			return compare.Worse, nil
		default:
			return compare.Equivalent, nil
		}
	}
}

func TestClusterRelativeScoreExample(t *testing.T) {
	// Reproduces the structure of the paper's Section III scores:
	//   C1: {AD 1.0, AA ≈ 0.3}
	//   C2: {AA ≈ 0.7, DD, DA}
	//   lower clusters: DD, DA with the remaining mass.
	res, err := Cluster(4, scoresComparator(11), ClusterOptions{Reps: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 1000 || res.P != 4 {
		t.Fatalf("meta wrong: %+v", res)
	}

	// Every score row must sum to 1: each repetition assigns exactly one rank.
	for a := 0; a < 4; a++ {
		var sum float64
		for r := 0; r < res.K; r++ {
			sum += res.Scores[a][r]
		}
		if !almostEq(sum, 1, 1e-9) {
			t.Fatalf("scores of alg %d sum to %v", a, sum)
		}
	}

	// AD is always in the top cluster.
	if !almostEq(res.Scores[algAD][0], 1.0, 1e-9) {
		t.Fatalf("AD rank-1 score = %v, want 1.0", res.Scores[algAD][0])
	}
	// AA lands in C1 roughly 1/3 of the time ("once in every three
	// comparisons") and in C2 the rest.
	if s := res.Scores[algAA][0]; s < 0.23 || s > 0.43 {
		t.Fatalf("AA rank-1 score = %v, want ≈ 0.33", s)
	}
	if s := res.Scores[algAA][1]; s < 0.57 || s > 0.77 {
		t.Fatalf("AA rank-2 score = %v, want ≈ 0.67", s)
	}
	// DD and DA never reach the top cluster.
	if res.Scores[algDD][0] != 0 || res.Scores[algDA][0] != 0 {
		t.Fatal("DD/DA should never be rank 1")
	}
	// GetCluster(1) lists AD first with score 1.0.
	c1, err := res.GetCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	if c1[0].Alg != algAD || !almostEq(c1[0].Score, 1.0, 1e-9) {
		t.Fatalf("C1 = %+v", c1)
	}
	if _, err := res.GetCluster(0); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := res.GetCluster(res.K + 1); err == nil {
		t.Fatal("overflow rank accepted")
	}
}

func TestClusterFinalAssignmentExample(t *testing.T) {
	// The paper's final clustering from the same example:
	//   C1: {AD 1.0}; C2: {AA 1.0}; C3: {DD 1.0, DA ≈ 0.9}
	res, err := Cluster(4, scoresComparator(23), ClusterOptions{Reps: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := res.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if fa.Rank[algAD] != 1 {
		t.Fatalf("AD final rank = %d", fa.Rank[algAD])
	}
	if !almostEq(fa.Score[algAD], 1.0, 1e-9) {
		t.Fatalf("AD final score = %v", fa.Score[algAD])
	}
	if fa.Rank[algAA] != 2 {
		t.Fatalf("AA final rank = %d", fa.Rank[algAA])
	}
	// AA's cumulated score includes its C1 mass: must be exactly 1.
	if !almostEq(fa.Score[algAA], 1.0, 1e-9) {
		t.Fatalf("AA final score = %v, want 1.0 after cumulation", fa.Score[algAA])
	}
	if fa.Rank[algDD] != 3 || fa.Rank[algDA] != 3 {
		t.Fatalf("DD/DA final ranks = %d/%d, want 3/3", fa.Rank[algDD], fa.Rank[algDA])
	}
	// DA's cumulated score is below 1 when it sometimes fell to rank 4.
	if fa.Score[algDA] <= 0.5 || fa.Score[algDA] > 1.0 {
		t.Fatalf("DA final score = %v", fa.Score[algDA])
	}
	if fa.K != 3 {
		t.Fatalf("final K = %d, want 3", fa.K)
	}
	// Classes listing is consistent with Rank.
	for r, class := range fa.Classes {
		for _, m := range class {
			if fa.Rank[m.Alg] != r+1 {
				t.Fatalf("class listing inconsistent at rank %d", r+1)
			}
		}
	}
}

func TestClusterDeterministicGivenSeeds(t *testing.T) {
	a, err := Cluster(4, scoresComparator(3), ClusterOptions{Reps: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(4, scoresComparator(3), ClusterOptions{Reps: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Scores {
		for r := range a.Scores[i] {
			if a.Scores[i][r] != b.Scores[i][r] {
				t.Fatal("clustering not reproducible under fixed seeds")
			}
		}
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(0, fig2Comparator, ClusterOptions{}); err != ErrNoAlgorithms {
		t.Fatal("p=0 accepted")
	}
	boom := func(i, j int) (compare.Outcome, error) {
		return 0, compare.ErrBadSample
	}
	if _, err := Cluster(3, boom, ClusterOptions{Reps: 2}); err == nil {
		t.Fatal("comparator error swallowed")
	}
}

func TestClusterDefaultReps(t *testing.T) {
	res, err := Cluster(4, fig2Comparator, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 100 {
		t.Fatalf("default reps = %d", res.Reps)
	}
}

func TestClusterDeterministicComparatorGivesCrispScores(t *testing.T) {
	// With the deterministic Figure-2 comparator every repetition must land
	// the same clusters regardless of the shuffle.
	res, err := Cluster(4, fig2Comparator, ClusterOptions{Reps: 200, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	if res.MeanK != 3 {
		t.Fatalf("MeanK = %v, want exactly 3", res.MeanK)
	}
	wantRank := map[int]int{algAD: 1, algAA: 2, algDD: 3, algDA: 3}
	for alg, r := range wantRank {
		if !almostEq(res.Scores[alg][r-1], 1.0, 1e-9) {
			t.Fatalf("alg %s score at rank %d = %v, want 1.0 (scores %v)",
				fig2Names[alg], r, res.Scores[alg][r-1], res.Scores[alg])
		}
	}
}

func TestClusterSingleAlgorithm(t *testing.T) {
	res, err := Cluster(1, fig2Comparator, ClusterOptions{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || !almostEq(res.Scores[0][0], 1, 1e-9) {
		t.Fatalf("single-algorithm clustering wrong: %+v", res)
	}
	fa, err := res.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if fa.K != 1 || fa.Rank[0] != 1 || !almostEq(fa.Score[0], 1, 1e-9) {
		t.Fatalf("single-algorithm finalize wrong: %+v", fa)
	}
}

func TestFinalizeCompactsGaps(t *testing.T) {
	// Construct a result where chosen raw ranks are 1 and 3 (gap at 2):
	// finalize must compact to 1 and 2.
	res := &ClusterResult{
		P: 2, Reps: 10, K: 3,
		Scores: [][]float64{
			{0.9, 0.1, 0.0},
			{0.0, 0.2, 0.8},
		},
	}
	fa, err := res.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if fa.Rank[0] != 1 || fa.Rank[1] != 2 {
		t.Fatalf("compacted ranks = %v", fa.Rank)
	}
	if fa.K != 2 {
		t.Fatalf("K = %d", fa.K)
	}
	// Algorithm 1's final score cumulates ranks 1..3 = 1.0.
	if !almostEq(fa.Score[1], 1.0, 1e-9) {
		t.Fatalf("cumulated score = %v", fa.Score[1])
	}
}

func TestClusterMembershipListsSortedByScore(t *testing.T) {
	res, err := Cluster(4, scoresComparator(31), ClusterOptions{Reps: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < res.K; r++ {
		for i := 1; i < len(res.Clusters[r]); i++ {
			if res.Clusters[r][i].Score > res.Clusters[r][i-1].Score {
				t.Fatalf("cluster %d not sorted by score: %+v", r+1, res.Clusters[r])
			}
		}
	}
}

func BenchmarkCluster8AlgsRep100(b *testing.B) {
	cmp := scoresComparator(1)
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(4, cmp, ClusterOptions{Reps: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
