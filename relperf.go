// Package relperf is the public entry point of the library: it wires the
// measurement substrate, the three-way bootstrap comparison and the
// rank-clustering procedure into an end-to-end relative-performance study,
// reproducing the methodology of Sankaran & Bientinesi, "Performance
// Comparison for Scientific Computations on the Edge via Relative
// Performance" (2021).
//
// A Study measures every placement of a program on a modeled edge platform,
// compares the resulting execution-time distributions pairwise (better /
// worse / equivalent), clusters the algorithms into performance classes with
// relative scores, and derives the per-algorithm profiles the decision
// models consume:
//
//	study, _ := relperf.NewStudy(relperf.StudyConfig{
//		Platform: relperf.DefaultPlatform(),
//		Program:  relperf.TableIProgram(10),
//		N:        30,
//	})
//	result, _ := study.Run()
//	result.WriteReport(os.Stdout)
//
// # Parallel execution and the determinism contract
//
// Run fans the measurement of the 2^L placements out over a worker pool
// (StudyConfig.Workers, default GOMAXPROCS) and, when the comparator
// supports forking (compare.Forker), runs the clustering repetitions
// concurrently as well. The engine guarantees that equal seeds produce
// bit-identical Results regardless of the worker count: every unit of work
// (a placement's measurement campaign, a clustering repetition, a pair's
// bootstrap pre-pass) draws from its own RNG stream keyed by the unit's
// index via xrand.Mix, and results are collected into index-ordered slots —
// nothing ever depends on goroutine scheduling.
package relperf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/measure"
	"relperf/internal/pool"
	"relperf/internal/report"
	"relperf/internal/sim"
	"relperf/internal/stats"
	"relperf/internal/workload"
	"relperf/internal/xrand"
)

// Re-exported constructors so example applications can stay on the public
// surface.

// DefaultPlatform returns the paper's testbed model (Xeon core + P100 +
// PCIe).
func DefaultPlatform() *sim.Platform { return sim.DefaultPlatform() }

// Figure1Platform returns the testbed model used by the Figure-1 workload.
func Figure1Platform() *sim.Platform { return workload.Figure1Platform() }

// TableIProgram returns the paper's three-MathTask scientific code
// (Procedure 5) with n loop iterations per task.
func TableIProgram(n int) *sim.Program {
	return workload.TableI(n, sim.DefaultPlatform().Accel.PeakFlops)
}

// Figure1Program returns the paper's two-loop Figure-1 workload.
func Figure1Program() *sim.Program {
	return workload.Figure1(sim.DefaultPlatform().Accel.PeakFlops)
}

// StudyConfig configures an end-to-end study.
type StudyConfig struct {
	// Platform is the modeled hardware; DefaultPlatform() if nil.
	Platform *sim.Platform
	// Program is the scientific code whose placements form the algorithm
	// set A. Required.
	Program *sim.Program
	// Placements restricts the algorithm set; nil means all 2^L.
	Placements []sim.Placement
	// N is the number of measurements per algorithm (default 30, the
	// paper's Table-I setting).
	N int
	// Warmup measurements are discarded first (default 0).
	Warmup int
	// Reps is the number of clustering repetitions (default 100).
	Reps int
	// Seed drives every stochastic component; studies with equal seeds
	// and configs produce identical results, whatever the worker count.
	Seed uint64
	// Comparator overrides the default bootstrap comparator. Comparators
	// implementing compare.Forker enable parallel clustering repetitions;
	// others fall back to a serial clustering stage. On the Forker path
	// only the comparator's decision parameters carry over: every
	// repetition uses a fork whose randomness is keyed off Seed, so any
	// RNG built into the supplied comparator itself is never drawn.
	Comparator compare.Comparator
	// Workers bounds the worker pool for measurement and clustering;
	// 0 means GOMAXPROCS. The results do not depend on this value.
	Workers int
	// Matrix enables the precomputed pairwise-statistics clustering path
	// (core.ClusterMatrix): each pair's bootstrap outcome distribution is
	// estimated once in parallel and the repetitions sample from the
	// cache. Requires a forkable comparator; ignored otherwise.
	Matrix bool
	// MatrixTrials is the number of comparator trials per pair on the
	// Matrix path (default 32).
	MatrixTrials int
	// SketchK switches the study into sketch mode: instead of materializing
	// every measurement, each placement's campaign streams into a
	// fixed-capacity quantile sketch of k = SketchK items
	// (stats.Sketch), and the clustering stage compares sketch quantiles
	// (compare.SketchComparator). 0 (the default) keeps the exact path and
	// its bit-identity contract untouched. Sketch mode has its own
	// contract: equal seeds produce bit-identical Results at any worker
	// count, and every reported quantile has rank error at most
	// stats.SketchEpsilon(SketchK). Valid values are 0 or
	// [MinSketchK, MaxStudySketchK]; sketch mode is incompatible with
	// Matrix and with comparators other than compare.SketchComparator.
	SketchK int
}

// Bounds on StudyConfig.SketchK (and the spec's "sketch": {"k": ...}).
// Below MinSketchK the rank-error bound SketchEpsilon(k) = 2/sqrt(k) is
// useless (> 0.5); above MaxStudySketchK the "fixed-size summary" premise
// stops holding for the campaign sizes this engine runs.
const (
	MinSketchK      = 16
	MaxStudySketchK = 1 << 20
)

// Study is a configured, not-yet-run experiment.
type Study struct {
	cfg        StudyConfig
	placements []sim.Placement
}

// NewStudy validates the configuration.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Program == nil {
		return nil, errors.New("relperf: StudyConfig.Program is required")
	}
	if cfg.Platform == nil {
		cfg.Platform = sim.DefaultPlatform()
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Program.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 30
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	if cfg.SketchK != 0 {
		if cfg.SketchK < MinSketchK || cfg.SketchK > MaxStudySketchK {
			return nil, fmt.Errorf("relperf: StudyConfig.SketchK must be 0 or in [%d, %d], got %d",
				MinSketchK, MaxStudySketchK, cfg.SketchK)
		}
		if cfg.Matrix {
			return nil, errors.New("relperf: sketch mode is incompatible with Matrix clustering")
		}
		if cfg.Comparator != nil {
			if _, ok := cfg.Comparator.(compare.SketchComparator); !ok {
				return nil, fmt.Errorf("relperf: sketch mode requires a compare.SketchComparator, got %T",
					cfg.Comparator)
			}
		}
	}
	placements := cfg.Placements
	if placements == nil {
		placements = sim.EnumeratePlacements(len(cfg.Program.Tasks))
	}
	for _, pl := range placements {
		if len(pl) != len(cfg.Program.Tasks) {
			return nil, fmt.Errorf("relperf: placement %s does not fit program with %d tasks",
				pl, len(cfg.Program.Tasks))
		}
	}
	return &Study{cfg: cfg, placements: placements}, nil
}

// Result is the outcome of a study: the measured distributions, the
// clustering with relative scores, the final assignment and the decision
// profiles.
type Result struct {
	// Names are the placement names, index-aligned with everything else.
	Names []string
	// Samples holds the measured execution-time distributions (exact mode;
	// nil in sketch mode).
	Samples *measure.SampleSet
	// Sketches holds the summarized distributions (sketch mode; nil in
	// exact mode).
	Sketches *measure.SketchSet
	// Clusters is the repeated-clustering outcome (Procedure 4).
	Clusters *core.ClusterResult
	// Final is the max-score assignment with cumulated scores.
	Final *core.FinalAssignment
	// Profiles feed the decision models of §IV.
	Profiles []decision.AlgorithmProfile

	// Stages are the wall-clock timings of the run's pipeline stages
	// (measure → cluster → finalize), recorded once per stage by RunOn —
	// never inside the per-resample loops, so the 0 allocs/op hot paths
	// are untouched. They are runtime telemetry, not results: the
	// canonical wire format (report.ResultJSON) excludes them, so equal
	// seeds still produce bit-identical result bytes at any worker count.
	Stages []StageTiming

	// profileIdx maps profile names to indices, built on first use; Results
	// served under traffic answer many ProfileByName queries per study.
	profileOnce sync.Once
	profileIdx  map[string]int
}

// StageTiming is one pipeline stage's wall-clock interval. Stage names
// are stable ("measure", "cluster", "finalize") — the fleet scheduler
// exports them as engine_stage_seconds{stage=...} histogram series.
type StageTiming struct {
	Name    string
	Start   time.Time
	Seconds float64
}

// Stage names recorded by RunOn.
const (
	StageMeasure  = "measure"
	StageCluster  = "cluster"
	StageFinalize = "finalize"
)

// aggregate accumulates the per-placement energy/utilization profile over
// the measured (post-warmup) runs only.
type aggregate struct {
	edgeFlops, accelFlops int64
	edgeJoules            float64
	accelJoules           float64
	accelBusy             float64
}

// placementSeed keys placement i's simulator stream off the study seed; the
// derivation depends only on (seed, i), never on which worker executes the
// placement or in what order.
func placementSeed(seed uint64, i int) uint64 {
	return xrand.Mix(seed, uint64(i))
}

// studyClusterSeed keys the clustering stage. The large domain constant
// keeps the derived value off every placement key (small ints), and —
// unlike the arithmetic seed+1 — off the streams of studies run with
// adjacent seeds, so seed sweeps never reuse a generator across
// replications.
func studyClusterSeed(seed uint64) uint64 {
	return xrand.Mix(seed, 0x636c7573746572) // "cluster"
}

// studySketchSeed keys the sketch ingest streams off the study seed, in a
// domain of its own so a placement's sketch hashes never collide with its
// simulator stream.
func studySketchSeed(seed uint64) uint64 {
	return xrand.Mix(seed, 0x736b65746368) // "sketch"
}

// measurePlacement runs placement i's full measurement campaign on a
// dedicated simulator: Warmup discarded runs first, then N measured runs.
// Only the measured runs contribute to the energy/busy aggregate, so
// profiles are free of warmup contamination.
func (s *Study) measurePlacement(i int) (measure.Sample, aggregate, error) {
	pl := s.placements[i]
	var agg aggregate
	simulator, err := sim.NewSimulator(s.cfg.Platform, placementSeed(s.cfg.Seed, i))
	if err != nil {
		return measure.Sample{}, agg, err
	}
	var scratch sim.RunResult
	for w := 0; w < s.cfg.Warmup; w++ {
		if err := simulator.RunInto(&scratch, s.cfg.Program, pl, false); err != nil {
			return measure.Sample{}, agg, fmt.Errorf("relperf: warmup %d of alg%s: %w", w, pl, err)
		}
	}
	runner := func() (float64, error) {
		if err := simulator.RunInto(&scratch, s.cfg.Program, pl, false); err != nil {
			return 0, err
		}
		agg.edgeFlops = scratch.EdgeFlops
		agg.accelFlops = scratch.AccelFlops
		agg.edgeJoules += scratch.EdgeJoules
		agg.accelJoules += scratch.AccelJoules
		agg.accelBusy += scratch.AccelBusy
		return scratch.Seconds, nil
	}
	sample, err := measure.Collect("alg"+pl.String(), runner, measure.Options{N: s.cfg.N})
	if err != nil {
		return measure.Sample{}, agg, err
	}
	runs := float64(s.cfg.N)
	agg.edgeJoules /= runs
	agg.accelJoules /= runs
	agg.accelBusy /= runs
	return sample, agg, nil
}

// measureSketchPlacement is measurePlacement for sketch mode: the same
// simulator stream (placementSeed) drives the same campaign, but each
// measurement streams into a fixed-capacity sketch instead of a slice. The
// sketch's ingest stream is keyed by (studySketchSeed(seed), i), so the
// summary — like the measurements — depends only on the study seed and the
// placement index, never on the worker that ran it.
func (s *Study) measureSketchPlacement(i int) (measure.SketchSample, aggregate, error) {
	pl := s.placements[i]
	var agg aggregate
	simulator, err := sim.NewSimulator(s.cfg.Platform, placementSeed(s.cfg.Seed, i))
	if err != nil {
		return measure.SketchSample{}, agg, err
	}
	sk, err := stats.NewSketch(s.cfg.SketchK, xrand.Mix(studySketchSeed(s.cfg.Seed), uint64(i)))
	if err != nil {
		return measure.SketchSample{}, agg, err
	}
	var scratch sim.RunResult
	for w := 0; w < s.cfg.Warmup; w++ {
		if err := simulator.RunInto(&scratch, s.cfg.Program, pl, false); err != nil {
			return measure.SketchSample{}, agg, fmt.Errorf("relperf: warmup %d of alg%s: %w", w, pl, err)
		}
	}
	runner := func() (float64, error) {
		if err := simulator.RunInto(&scratch, s.cfg.Program, pl, false); err != nil {
			return 0, err
		}
		agg.edgeFlops = scratch.EdgeFlops
		agg.accelFlops = scratch.AccelFlops
		agg.edgeJoules += scratch.EdgeJoules
		agg.accelJoules += scratch.AccelJoules
		agg.accelBusy += scratch.AccelBusy
		return scratch.Seconds, nil
	}
	sample, err := measure.CollectSketch("alg"+pl.String(), sk, runner, measure.Options{N: s.cfg.N})
	if err != nil {
		return measure.SketchSample{}, agg, err
	}
	runs := float64(s.cfg.N)
	agg.edgeJoules /= runs
	agg.accelJoules /= runs
	agg.accelBusy /= runs
	return sample, agg, nil
}

// Run executes the study: measure, compare, cluster, score, profile. The
// placements are measured on a worker pool and the clustering repetitions
// run concurrently when the comparator supports forking; equal seeds yield
// bit-identical Results at every worker count (see the package comment).
func (s *Study) Run() (*Result, error) {
	return s.RunOn(context.Background(), nil)
}

// RunOn is Run with cancellation and an optional shared worker budget: when
// budget is non-nil every work unit of the study (placement campaigns,
// clustering repetitions, matrix pre-pass pairs) acquires a token from it
// instead of a private pool of StudyConfig.Workers goroutines, so many
// concurrent studies collectively respect one global concurrency bound —
// the fleet scheduler's execution mode. One exception: a custom comparator
// that does not implement compare.Forker forces the serial clustering
// fallback, which runs on the study's own goroutine outside the budget
// (the fleet layers never hit this — Fingerprint rejects custom
// comparators). The Result is bit-identical whichever way the study runs.
func (s *Study) RunOn(ctx context.Context, budget *Budget) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var shared *pool.Pool
	if budget != nil {
		shared = budget.pool
	}
	p := len(s.placements)
	sketchMode := s.cfg.SketchK > 0
	res := &Result{}
	aggs := make([]aggregate, p)
	var measureOne func(i int) error
	if sketchMode {
		res.Sketches = &measure.SketchSet{
			Workload: s.cfg.Program.Name,
			Sketches: make([]measure.SketchSample, p),
		}
		measureOne = func(i int) error {
			var err error
			res.Sketches.Sketches[i], aggs[i], err = s.measureSketchPlacement(i)
			return err
		}
	} else {
		res.Samples = &measure.SampleSet{
			Workload: s.cfg.Program.Name,
			Samples:  make([]measure.Sample, p),
		}
		measureOne = func(i int) error {
			var err error
			res.Samples.Samples[i], aggs[i], err = s.measurePlacement(i)
			return err
		}
	}
	// Stage timings bracket whole pipeline stages — one time.Now pair per
	// stage, outside every per-placement and per-resample loop.
	mark := func(name string, start time.Time) {
		res.Stages = append(res.Stages, StageTiming{Name: name, Start: start, Seconds: time.Since(start).Seconds()})
	}
	stageStart := time.Now()
	var err error
	if shared != nil {
		err = shared.ForEach(ctx, p, measureOne)
	} else {
		err = pool.ForEachCtx(ctx, p, s.cfg.Workers, measureOne)
	}
	if err != nil {
		return nil, err
	}
	if sketchMode {
		res.Names = res.Sketches.Names()
	} else {
		res.Names = res.Samples.Names()
	}
	mark(StageMeasure, stageStart)

	ccfg := clusterConfig{
		Reps:         s.cfg.Reps,
		Seed:         studyClusterSeed(s.cfg.Seed),
		Workers:      s.cfg.Workers,
		Matrix:       s.cfg.Matrix,
		MatrixTrials: s.cfg.MatrixTrials,
		Ctx:          ctx,
		Pool:         shared,
	}
	stageStart = time.Now()
	if sketchMode {
		// NewStudy guarantees the comparator is nil or a SketchComparator;
		// the failed assertion leaves the zero value, i.e. the defaults.
		scmp, _ := s.cfg.Comparator.(compare.SketchComparator)
		res.Clusters, err = clusterSketches(res.Sketches, scmp, ccfg)
	} else {
		cmp := s.cfg.Comparator
		if cmp == nil {
			// Only the prototype's decision parameters matter: Bootstrap
			// implements Forker, so clusterData replaces it with per-repetition
			// forks keyed off the cluster seed and this RNG never draws.
			cmp = compare.NewBootstrap(0)
		}
		res.Clusters, err = clusterData(res.Samples, cmp, ccfg)
	}
	if err != nil {
		return nil, err
	}
	mark(StageCluster, stageStart)
	stageStart = time.Now()
	res.Final, err = res.Clusters.Finalize()
	if err != nil {
		return nil, err
	}

	mean := func(i int) float64 { return res.Sketches.Sketches[i].Sketch.Mean() }
	if !sketchMode {
		data := res.Samples.Data()
		mean = func(i int) float64 { return stats.Mean(data[i]) }
	}
	for i := range s.placements {
		res.Profiles = append(res.Profiles, decision.AlgorithmProfile{
			Name:         s.placements[i].String(),
			Rank:         res.Final.Rank[i],
			Score:        res.Final.Score[i],
			MeanSeconds:  mean(i),
			EdgeFlops:    aggs[i].edgeFlops,
			AccelFlops:   aggs[i].accelFlops,
			EdgeJoules:   aggs[i].edgeJoules,
			AccelJoules:  aggs[i].accelJoules,
			AccelSeconds: aggs[i].accelBusy,
		})
	}
	mark(StageFinalize, stageStart)
	return res, nil
}

// clusterConfig parameterizes the shared comparison-and-clustering stage.
type clusterConfig struct {
	Reps         int
	Seed         uint64
	Workers      int
	Matrix       bool
	MatrixTrials int
	Ctx          context.Context
	Pool         *pool.Pool
}

// clusterData runs the clustering stage over measured distributions. When
// cmp implements compare.Forker the repetitions execute in parallel with
// per-repetition keyed comparator streams (and optionally via the
// precomputed pairwise matrix); otherwise the legacy serial path is used
// with cmp shared across repetitions.
//
// When the forked comparators also implement compare.SortedComparator
// (bootstrap, KS), every sample is sorted exactly once up front —
// ss.Sorted() — and all comparisons of all repetitions and matrix trials
// read off the shared sorted views, bit-identically to the raw path.
func clusterData(ss *measure.SampleSet, cmp compare.Comparator, cfg clusterConfig) (*core.ClusterResult, error) {
	data := ss.Data()
	forker, forkable := cmp.(compare.Forker)
	if forkable {
		fork := func(seed uint64) core.CompareFunc {
			c := forker.Fork(seed)
			return func(i, j int) (compare.Outcome, error) { return c.Compare(data[i], data[j]) }
		}
		if _, ok := forker.Fork(0).(compare.SortedComparator); ok {
			// Pre-sort all samples once; the clustering and matrix stages
			// then never re-derive sample order.
			sorted := ss.Sorted()
			fork = func(seed uint64) core.CompareFunc {
				c := forker.Fork(seed)
				sc, ok := c.(compare.SortedComparator)
				if !ok { // a Fork that changes type mid-stream: stay correct
					return func(i, j int) (compare.Outcome, error) { return c.Compare(data[i], data[j]) }
				}
				return func(i, j int) (compare.Outcome, error) { return sc.CompareSorted(sorted[i], sorted[j]) }
			}
		}
		if cfg.Matrix {
			return core.ClusterMatrix(len(data), core.MatrixOptions{
				Reps:    cfg.Reps,
				Trials:  cfg.MatrixTrials,
				Workers: cfg.Workers,
				Seed:    cfg.Seed,
				Fork:    fork,
				Pool:    cfg.Pool,
				Ctx:     cfg.Ctx,
			})
		}
		return core.Cluster(len(data), nil, core.ClusterOptions{
			Reps:    cfg.Reps,
			Seed:    cfg.Seed,
			Workers: cfg.Workers,
			Fork:    fork,
			Pool:    cfg.Pool,
			Ctx:     cfg.Ctx,
		})
	}
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(data[i], data[j]) }
	return core.Cluster(len(data), cf, core.ClusterOptions{
		Reps: cfg.Reps,
		Seed: cfg.Seed,
		Ctx:  cfg.Ctx,
	})
}

// clusterSketches is the sketch-mode clustering stage: the repetitions run
// on the same worker pool under the same seed derivation as clusterData,
// but every comparison reads the two placements' frozen sketches. The
// comparator is deterministic and stateless (its Fork is the identity), so
// all repetitions share it; the sketches' lazy quantile caches are
// mutex-guarded, so concurrent reads are safe.
func clusterSketches(ss *measure.SketchSet, cmp compare.SketchComparator, cfg clusterConfig) (*core.ClusterResult, error) {
	sks := make([]*stats.Sketch, len(ss.Sketches))
	for i := range ss.Sketches {
		sks[i] = ss.Sketches[i].Sketch
	}
	fork := func(uint64) core.CompareFunc {
		return func(i, j int) (compare.Outcome, error) { return cmp.CompareSketches(sks[i], sks[j]) }
	}
	return core.Cluster(len(sks), nil, core.ClusterOptions{
		Reps:    cfg.Reps,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Fork:    fork,
		Pool:    cfg.Pool,
		Ctx:     cfg.Ctx,
	})
}

// ClusterSamples runs the comparison and clustering stages over pre-measured
// distributions (e.g. loaded from CSV with measure.ReadCSV) — the paper's
// footnote-5 workflow of re-clustering archived measurements. It is
// ClusterSamplesWith at the default options.
func ClusterSamples(ss *measure.SampleSet, cmp compare.Comparator, reps int, seed uint64) (*core.ClusterResult, *core.FinalAssignment, error) {
	return ClusterSamplesWith(ss, cmp, ClusterSamplesOptions{Reps: reps, Seed: seed})
}

// ClusterSamplesOptions configures ClusterSamplesWith.
type ClusterSamplesOptions struct {
	// Reps is the number of clustering repetitions (default 100).
	Reps int
	// Seed keys every stochastic stream of the stage.
	Seed uint64
	// Workers bounds the repetition pool; 0 means GOMAXPROCS. The results
	// do not depend on this value.
	Workers int
	// Matrix enables the precomputed pairwise-statistics path; see
	// StudyConfig.Matrix.
	Matrix bool
	// MatrixTrials is the per-pair trial count on the Matrix path
	// (default 32).
	MatrixTrials int
}

// ClusterSamplesWith is ClusterSamples with explicit engine options: the
// repetitions run on a worker pool when cmp (or the default bootstrap
// comparator) supports forking, under the same determinism contract as
// Study.Run. As with StudyConfig.Comparator, a forkable cmp contributes
// only its decision parameters — all clustering randomness derives from
// opts.Seed, not from any RNG built into cmp.
//
// The engine sorts every sample once up front and reuses the sorted views
// across calls (measure.SampleSet.Sorted). Samples that grow or visibly
// change between calls are re-sorted automatically; beyond that, the set
// is assumed immutable while being clustered — the methodology re-clusters
// archived measurements (footnote 5), it never edits them in place.
func ClusterSamplesWith(ss *measure.SampleSet, cmp compare.Comparator, opts ClusterSamplesOptions) (*core.ClusterResult, *core.FinalAssignment, error) {
	if err := ss.Validate(); err != nil {
		return nil, nil, err
	}
	if cmp == nil {
		cmp = compare.NewBootstrap(opts.Seed)
	}
	if opts.Reps <= 0 {
		opts.Reps = 100
	}
	cr, err := clusterData(ss, cmp, clusterConfig{
		Reps:         opts.Reps,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
		Matrix:       opts.Matrix,
		MatrixTrials: opts.MatrixTrials,
	})
	if err != nil {
		return nil, nil, err
	}
	fa, err := cr.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return cr, fa, nil
}

// WriteReport renders the study in the paper's format: distribution
// summaries, the Table-I-style cluster table and the final clustering. In
// sketch mode the summaries are read off the sketches and headed by the
// mode's rank-error bound.
func (r *Result) WriteReport(w io.Writer) error {
	if r.Sketches != nil {
		if _, err := fmt.Fprintf(w, "Workload: %s\n\nSummarized distributions (sketch k=%d, rank error ≤ %.4f):\n",
			r.Sketches.Workload, r.Sketches.K(), stats.SketchEpsilon(r.Sketches.K())); err != nil {
			return err
		}
		sks := make([]*stats.Sketch, len(r.Sketches.Sketches))
		for i := range r.Sketches.Sketches {
			sks[i] = r.Sketches.Sketches[i].Sketch
		}
		if err := report.SketchSummaryTable(w, r.Names, sks); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "Workload: %s\n\nMeasured distributions:\n", r.Samples.Workload); err != nil {
			return err
		}
		if err := report.SummaryTable(w, r.Names, r.Samples.Data()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\nClustering (Rep=%d):\n", r.Clusters.Reps); err != nil {
		return err
	}
	if err := report.ClusterTable(w, r.Clusters, r.Names); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nFinal clustering:"); err != nil {
		return err
	}
	return report.FinalTable(w, r.Final, r.Names)
}

// ProfileByName returns the decision profile for a placement name like
// "DDA", or an error when absent. The name index is built lazily on the
// first lookup and shared by all subsequent ones, so serving many queries
// against one Result costs O(1) per lookup rather than a scan. Profiles
// must not be mutated after the first lookup.
func (r *Result) ProfileByName(name string) (decision.AlgorithmProfile, error) {
	r.profileOnce.Do(func() {
		r.profileIdx = make(map[string]int, len(r.Profiles))
		for i := range r.Profiles {
			if _, dup := r.profileIdx[r.Profiles[i].Name]; !dup {
				r.profileIdx[r.Profiles[i].Name] = i
			}
		}
	})
	if i, ok := r.profileIdx[name]; ok {
		return r.Profiles[i], nil
	}
	return decision.AlgorithmProfile{}, fmt.Errorf("relperf: no profile named %q", name)
}
