// Package relperf is the public entry point of the library: it wires the
// measurement substrate, the three-way bootstrap comparison and the
// rank-clustering procedure into an end-to-end relative-performance study,
// reproducing the methodology of Sankaran & Bientinesi, "Performance
// Comparison for Scientific Computations on the Edge via Relative
// Performance" (2021).
//
// A Study measures every placement of a program on a modeled edge platform,
// compares the resulting execution-time distributions pairwise (better /
// worse / equivalent), clusters the algorithms into performance classes with
// relative scores, and derives the per-algorithm profiles the decision
// models consume:
//
//	study, _ := relperf.NewStudy(relperf.StudyConfig{
//		Platform: relperf.DefaultPlatform(),
//		Program:  relperf.TableIProgram(10),
//		N:        30,
//	})
//	result, _ := study.Run()
//	result.WriteReport(os.Stdout)
package relperf

import (
	"errors"
	"fmt"
	"io"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/decision"
	"relperf/internal/measure"
	"relperf/internal/report"
	"relperf/internal/sim"
	"relperf/internal/stats"
	"relperf/internal/workload"
)

// Re-exported constructors so example applications can stay on the public
// surface.

// DefaultPlatform returns the paper's testbed model (Xeon core + P100 +
// PCIe).
func DefaultPlatform() *sim.Platform { return sim.DefaultPlatform() }

// Figure1Platform returns the testbed model used by the Figure-1 workload.
func Figure1Platform() *sim.Platform { return workload.Figure1Platform() }

// TableIProgram returns the paper's three-MathTask scientific code
// (Procedure 5) with n loop iterations per task.
func TableIProgram(n int) *sim.Program {
	return workload.TableI(n, sim.DefaultPlatform().Accel.PeakFlops)
}

// Figure1Program returns the paper's two-loop Figure-1 workload.
func Figure1Program() *sim.Program {
	return workload.Figure1(sim.DefaultPlatform().Accel.PeakFlops)
}

// StudyConfig configures an end-to-end study.
type StudyConfig struct {
	// Platform is the modeled hardware; DefaultPlatform() if nil.
	Platform *sim.Platform
	// Program is the scientific code whose placements form the algorithm
	// set A. Required.
	Program *sim.Program
	// Placements restricts the algorithm set; nil means all 2^L.
	Placements []sim.Placement
	// N is the number of measurements per algorithm (default 30, the
	// paper's Table-I setting).
	N int
	// Warmup measurements are discarded first (default 0).
	Warmup int
	// Reps is the number of clustering repetitions (default 100).
	Reps int
	// Seed drives every stochastic component; studies with equal seeds
	// and configs produce identical results.
	Seed uint64
	// Comparator overrides the default bootstrap comparator.
	Comparator compare.Comparator
}

// Study is a configured, not-yet-run experiment.
type Study struct {
	cfg        StudyConfig
	placements []sim.Placement
}

// NewStudy validates the configuration.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Program == nil {
		return nil, errors.New("relperf: StudyConfig.Program is required")
	}
	if cfg.Platform == nil {
		cfg.Platform = sim.DefaultPlatform()
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Program.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 30
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	placements := cfg.Placements
	if placements == nil {
		placements = sim.EnumeratePlacements(len(cfg.Program.Tasks))
	}
	for _, pl := range placements {
		if len(pl) != len(cfg.Program.Tasks) {
			return nil, fmt.Errorf("relperf: placement %s does not fit program with %d tasks",
				pl, len(cfg.Program.Tasks))
		}
	}
	return &Study{cfg: cfg, placements: placements}, nil
}

// Result is the outcome of a study: the measured distributions, the
// clustering with relative scores, the final assignment and the decision
// profiles.
type Result struct {
	// Names are the placement names, index-aligned with everything else.
	Names []string
	// Samples holds the measured execution-time distributions.
	Samples *measure.SampleSet
	// Clusters is the repeated-clustering outcome (Procedure 4).
	Clusters *core.ClusterResult
	// Final is the max-score assignment with cumulated scores.
	Final *core.FinalAssignment
	// Profiles feed the decision models of §IV.
	Profiles []decision.AlgorithmProfile
}

// Run executes the study: measure, compare, cluster, score, profile.
func (s *Study) Run() (*Result, error) {
	simulator, err := sim.NewSimulator(s.cfg.Platform, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Samples: &measure.SampleSet{Workload: s.cfg.Program.Name},
	}

	type aggregate struct {
		edgeFlops, accelFlops int64
		edgeJoules            float64
		accelJoules           float64
		accelBusy             float64
	}
	aggs := make([]aggregate, len(s.placements))

	for i, pl := range s.placements {
		name := "alg" + pl.String()
		res.Names = append(res.Names, name)
		var agg aggregate
		runner := func() (float64, error) {
			r, err := simulator.Run(s.cfg.Program, pl)
			if err != nil {
				return 0, err
			}
			agg.edgeFlops = r.EdgeFlops
			agg.accelFlops = r.AccelFlops
			agg.edgeJoules += r.EdgeJoules
			agg.accelJoules += r.AccelJoules
			agg.accelBusy += r.AccelBusy
			return r.Seconds, nil
		}
		sample, err := measure.Collect(name, runner, measure.Options{N: s.cfg.N, Warmup: s.cfg.Warmup})
		if err != nil {
			return nil, err
		}
		res.Samples.Samples = append(res.Samples.Samples, sample)
		// Warmup runs contaminate the energy sums only negligibly relative
		// to N runs; normalize by the total runner invocations.
		runs := float64(s.cfg.N + s.cfg.Warmup)
		agg.edgeJoules /= runs
		agg.accelJoules /= runs
		agg.accelBusy /= runs
		aggs[i] = agg
	}

	cmp := s.cfg.Comparator
	if cmp == nil {
		cmp = compare.NewBootstrapFrom(simulator.SplitRNG())
	}
	data := res.Samples.Data()
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(data[i], data[j]) }
	res.Clusters, err = core.Cluster(len(s.placements), cf, core.ClusterOptions{
		Reps: s.cfg.Reps,
		Seed: s.cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	res.Final, err = res.Clusters.Finalize()
	if err != nil {
		return nil, err
	}

	for i := range s.placements {
		res.Profiles = append(res.Profiles, decision.AlgorithmProfile{
			Name:         s.placements[i].String(),
			Rank:         res.Final.Rank[i],
			Score:        res.Final.Score[i],
			MeanSeconds:  stats.Mean(data[i]),
			EdgeFlops:    aggs[i].edgeFlops,
			AccelFlops:   aggs[i].accelFlops,
			EdgeJoules:   aggs[i].edgeJoules,
			AccelJoules:  aggs[i].accelJoules,
			AccelSeconds: aggs[i].accelBusy,
		})
	}
	return res, nil
}

// ClusterSamples runs the comparison and clustering stages over pre-measured
// distributions (e.g. loaded from CSV with measure.ReadCSV) — the paper's
// footnote-5 workflow of re-clustering archived measurements.
func ClusterSamples(ss *measure.SampleSet, cmp compare.Comparator, reps int, seed uint64) (*core.ClusterResult, *core.FinalAssignment, error) {
	if err := ss.Validate(); err != nil {
		return nil, nil, err
	}
	if cmp == nil {
		cmp = compare.NewBootstrap(seed)
	}
	if reps <= 0 {
		reps = 100
	}
	data := ss.Data()
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(data[i], data[j]) }
	cr, err := core.Cluster(len(data), cf, core.ClusterOptions{Reps: reps, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	fa, err := cr.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return cr, fa, nil
}

// WriteReport renders the study in the paper's format: distribution
// summaries, the Table-I-style cluster table and the final clustering.
func (r *Result) WriteReport(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Workload: %s\n\nMeasured distributions:\n", r.Samples.Workload); err != nil {
		return err
	}
	if err := report.SummaryTable(w, r.Names, r.Samples.Data()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nClustering (Rep=%d):\n", r.Clusters.Reps); err != nil {
		return err
	}
	if err := report.ClusterTable(w, r.Clusters, r.Names); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nFinal clustering:"); err != nil {
		return err
	}
	return report.FinalTable(w, r.Final, r.Names)
}

// ProfileByName returns the decision profile for a placement name like
// "DDA", or an error when absent.
func (r *Result) ProfileByName(name string) (decision.AlgorithmProfile, error) {
	for _, p := range r.Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return decision.AlgorithmProfile{}, fmt.Errorf("relperf: no profile named %q", name)
}
