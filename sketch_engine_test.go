package relperf

// End-to-end tests of sketch mode: the opt-in study path that streams each
// placement's campaign into a fixed-capacity quantile sketch instead of
// materializing it. Sketch mode has its own determinism contract — equal
// seeds produce bit-identical Results (and wire bytes) at any worker count —
// plus the capacity property that motivates it: a campaign of 10^6
// measurements per placement completes in O(k) memory per placement.

import (
	"bytes"
	"strings"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/sim"
)

func sketchStudyConfig(seed uint64, workers int) StudyConfig {
	return StudyConfig{
		Program: smallProgram(),
		N:       400,
		Warmup:  2,
		Reps:    20,
		Seed:    seed,
		Workers: workers,
		SketchK: 64,
	}
}

func runSketchStudy(t *testing.T, cfg StudyConfig) *Result {
	t.Helper()
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSketchStudyWorkerDeterminism is sketch mode's central property: for
// several seeds, Workers=1 and Workers=8 must produce byte-identical wire
// documents — the same contract the exact path has, carried by the sketch's
// order-insensitive deterministic compaction.
func TestSketchStudyWorkerDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		base := runSketchStudy(t, sketchStudyConfig(seed, 1))
		baseWire, err := base.MarshalWire()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			res := runSketchStudy(t, sketchStudyConfig(seed, workers))
			wire, err := res.MarshalWire()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wire, baseWire) {
				t.Fatalf("seed %d: Workers=%d wire bytes differ from Workers=1", seed, workers)
			}
		}
	}
}

func TestSketchStudyResultShape(t *testing.T) {
	res := runSketchStudy(t, sketchStudyConfig(3, 0))
	if res.Samples != nil {
		t.Fatal("sketch-mode result materialized exact samples")
	}
	if res.Sketches == nil {
		t.Fatal("sketch-mode result has no sketches")
	}
	if err := res.Sketches.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Sketches.Sketches), 4; got != want {
		t.Fatalf("%d sketches for %d placements", got, want)
	}
	if res.Sketches.K() != 64 {
		t.Fatalf("sketch set k = %d, want 64", res.Sketches.K())
	}
	for i, s := range res.Sketches.Sketches {
		if s.N() != 400 {
			t.Fatalf("sketch %d summarizes %d measurements, want 400", i, s.N())
		}
	}
	// Profiles stay fully populated: means come off the sketches, the
	// energy/utilization aggregates off the simulator as in exact mode.
	for i, p := range res.Profiles {
		if p.MeanSeconds <= 0 || p.EdgeJoules < 0 {
			t.Fatalf("profile %d not populated: %+v", i, p)
		}
		if p.Rank < 1 {
			t.Fatalf("profile %d unranked", i)
		}
	}
	// The rendered report must flag the mode and its error bound.
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sketch k=64") {
		t.Errorf("sketch-mode report does not name the mode:\n%s", buf.String())
	}
}

func TestSketchStudyWireRoundTrip(t *testing.T) {
	res := runSketchStudy(t, sketchStudyConfig(9, 0))
	wire, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResultWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Samples != nil || back.Sketches == nil {
		t.Fatal("sketch-mode wire round trip lost its mode")
	}
	again, err := back.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, wire) {
		t.Fatal("sketch-mode wire document is not a canonical fixed point")
	}
	// VerifyGridResult accepts canonical sketch-mode replies like exact ones.
	if _, err := VerifyGridResult(GridTask{Fingerprint: "f"}, wire); err != nil {
		t.Fatalf("canonical sketch result rejected by grid verification: %v", err)
	}
	// A result whose error bound was tampered with must be rejected.
	tampered := bytes.Replace(wire, []byte(`"error_bound":`), []byte(`"error_bound":9`), 1)
	if _, err := UnmarshalResultWire(tampered); err == nil {
		t.Fatal("tampered error bound accepted")
	}
}

func TestSketchStudyValidation(t *testing.T) {
	base := StudyConfig{Program: smallProgram(), N: 5, Reps: 5}

	bad := base
	bad.SketchK = 8 // below MinSketchK
	if _, err := NewStudy(bad); err == nil {
		t.Error("SketchK below MinSketchK accepted")
	}
	bad = base
	bad.SketchK = MaxStudySketchK + 1
	if _, err := NewStudy(bad); err == nil {
		t.Error("SketchK above MaxStudySketchK accepted")
	}
	bad = base
	bad.SketchK = 64
	bad.Matrix = true
	if _, err := NewStudy(bad); err == nil {
		t.Error("sketch mode with Matrix accepted")
	}
	bad = base
	bad.SketchK = 64
	bad.Comparator = compare.KS{}
	if _, err := NewStudy(bad); err == nil {
		t.Error("sketch mode with a non-sketch comparator accepted")
	}
	good := base
	good.SketchK = 64
	good.Comparator = compare.SketchComparator{Margin: 0.2}
	if _, err := NewStudy(good); err != nil {
		t.Errorf("sketch mode with an explicit SketchComparator rejected: %v", err)
	}
}

// TestSketchFingerprintSeparation pins the collision rule: the same
// configuration fingerprints differently exact vs sketch, and differently
// across sketch capacities — exact and approximate results must never share
// a cache identity.
func TestSketchFingerprintSeparation(t *testing.T) {
	base := StudyConfig{Program: smallProgram(), N: 10, Reps: 10}
	exactFP, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	sk := base
	sk.SketchK = 64
	skFP, err := Fingerprint(sk)
	if err != nil {
		t.Fatal(err)
	}
	if exactFP == skFP {
		t.Fatal("exact and sketch configurations share a fingerprint")
	}
	sk2 := base
	sk2.SketchK = 256
	sk2FP, err := Fingerprint(sk2)
	if err != nil {
		t.Fatal(err)
	}
	if skFP == sk2FP {
		t.Fatal("different sketch capacities share a fingerprint")
	}
	// A nil comparator and an explicit default SketchComparator are one
	// identity in sketch mode, mirroring nil-vs-default-bootstrap in exact
	// mode.
	skDefault := sk
	skDefault.Comparator = compare.SketchComparator{}
	defFP, err := Fingerprint(skDefault)
	if err != nil {
		t.Fatal(err)
	}
	if defFP != skFP {
		t.Fatal("nil and explicit default SketchComparator fingerprint differently")
	}
}

// TestSketchStudyMillionMeasurements is the capacity property sketch mode
// exists for: N=10^6 per placement completes with fixed-size summaries. The
// raw-kernel program keeps each simulated run cheap; two placements bound
// the simulation work.
func TestSketchStudyMillionMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("10^6-measurement campaign in -short mode")
	}
	placements := []sim.Placement{}
	for _, s := range []string{"D", "A"} {
		pl, err := sim.ParsePlacement(s)
		if err != nil {
			t.Fatal(err)
		}
		placements = append(placements, pl)
	}
	study, err := NewStudy(StudyConfig{
		Program: &sim.Program{
			Name: "hot-loop",
			Tasks: []sim.Task{
				{Name: "T", Flops: 1e6, Launches: 1, EdgeEff: 1, AccelEff: 0.1},
			},
		},
		Placements: placements,
		N:          1_000_000,
		Reps:       10,
		Seed:       5,
		SketchK:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Sketches.Sketches {
		if s.N() != 1_000_000 {
			t.Fatalf("sketch %d summarizes %d measurements", i, s.N())
		}
		if got := s.Sketch.Retained(); got > 256 {
			t.Fatalf("sketch %d retains %d items, over its capacity", i, got)
		}
	}
	wire, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	// The whole million-measurement result stays a compact document.
	if len(wire) > 64<<10 {
		t.Fatalf("sketch-mode wire document is %d bytes; the fixed-size premise failed", len(wire))
	}
}
