// Hierarchical object-detection example: the paper's second motivating
// application. A drone's onboard SoC runs a low-fidelity detector for quick
// identification; a high-fidelity corrector runs in the background, and the
// correction lag depends on how the stages are split between the SoC and an
// edge-server GPU behind a 5G link. Model weights are resident on both
// sides, so offloading a stage ships only its activations — a different
// data-movement regime from the host-centric TensorFlow model of the paper's
// testbed, and the regime in which wireless offload can pay at all.
//
//	go run ./examples/objectdetect
package main

import (
	"fmt"
	"log"
	"os"

	"relperf"
	"relperf/internal/decision"
	"relperf/internal/device"
	"relperf/internal/sim"
)

func main() {
	platform := &sim.Platform{
		Edge:  device.Smartphone(),
		Accel: device.P100(),
		Link:  device.FiveG(),
	}

	// The three dependent stages of the detection pipeline, in resource
	// terms. Only activations cross the link (weights are resident):
	//  - preprocess: image decode + feature pyramid (moderate compute,
	//    a full frame of data — expensive to ship).
	//  - lofi: the quick detector, many small kernels over 60 regions
	//    (little compute, but per-region round trips — latency-bound
	//    when offloaded).
	//  - hifi: the corrector, heavy compute on one compact feature map —
	//    the natural offload candidate.
	program := &sim.Program{
		Name: "object-detection",
		Tasks: []sim.Task{
			{
				Name: "preprocess", Flops: 400e6, Launches: 12,
				HostInBytes: 8e6, HostOutBytes: 2e6, Transfers: 4,
				EdgeEff: 0.8, AccelEff: 0.05,
			},
			{
				Name: "lofi-detector", Flops: 250e6, Launches: 60,
				HostInBytes: 6e6, HostOutBytes: 1e6, Transfers: 60,
				EdgeEff: 0.8, AccelEff: 0.02,
			},
			{
				Name: "hifi-corrector", Flops: 2.7e9, Launches: 10,
				HostInBytes: 4e6, HostOutBytes: 1e6, Transfers: 3,
				EdgeEff: 0.8, AccelEff: 0.3,
			},
		},
	}

	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: platform,
		Program:  program,
		N:        50,
		Reps:     100,
		Seed:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := result.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// From the fastest classes, pick the member that burns the fewest
	// FLOPs on the battery-powered drone.
	pick, err := decision.MostOffloading(result.Profiles, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAmong the top classes, alg%s offloads the most "+
		"(%.2e FLOPs stay on the drone; lag %.1f ms).\n",
		pick.Name, float64(pick.EdgeFlops), pick.MeanSeconds*1e3)

	local, err := result.ProfileByName("DDD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("All-onboard (algDDD) lag: %.1f ms (class C%d).\n",
		local.MeanSeconds*1e3, local.Rank)
	best, err := decision.ChooseWithinEdgeBudget(result.Profiles, 1<<62)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fastest split: alg%s at %.1f ms — %.2fx over all-onboard.\n",
		best.Name, best.MeanSeconds*1e3, decision.Speedup(best, local))
}
