// Digital-twin example: the paper's first motivating application. A
// multi-scale simulation hierarchy solves four Regularized Least Squares
// problems of increasing scale, each feeding the next (results of one
// simulation drive the next — no concurrency possible). The 16 placements
// across the edge device and the accelerator are clustered, then an
// algorithm is selected under an edge-device FLOP budget: the digital twin
// must keep responding even when the edge node is energy constrained.
//
//	go run ./examples/digitaltwin
package main

import (
	"fmt"
	"log"
	"os"

	"relperf"
	"relperf/internal/decision"
	"relperf/internal/sim"
	"relperf/internal/workload"
)

func main() {
	// A four-level hierarchy: coarse model, two refinement levels, and a
	// fine full-field solve. Sizes grow like a multi-grid hierarchy.
	specs := []workload.MathTaskSpec{
		{Name: "coarse", Size: 40, Iters: 10, Lambda: 0.5},
		{Name: "mid", Size: 90, Iters: 10, Lambda: 0.5},
		{Name: "fine", Size: 180, Iters: 10, Lambda: 0.5},
		{Name: "full", Size: 360, Iters: 10, Lambda: 0.5},
	}
	platform := relperf.DefaultPlatform()
	program := &sim.Program{Name: "digital-twin"}
	for i := range specs {
		program.Tasks = append(program.Tasks, specs[i].Task(platform.Accel.PeakFlops))
	}

	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: platform,
		Program:  program,
		N:        30,
		Reps:     100,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := result.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Selection under an edge FLOP budget: the twin's edge node may spend
	// at most 0.1 GFLOP per update cycle.
	const budget = 100_000_000
	pick, err := decision.ChooseWithinEdgeBudget(result.Profiles, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith an edge budget of %.1e FLOPs per update, run alg%s "+
		"(class C%d, %.2f ms, %.2e edge FLOPs).\n",
		float64(budget), pick.Name, pick.Rank, pick.MeanSeconds*1e3, float64(pick.EdgeFlops))

	// Unconstrained best, for contrast.
	best, err := decision.ChooseWithinEdgeBudget(result.Profiles, 1<<62)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Unconstrained, the fastest class contains alg%s (%.2f ms).\n",
		best.Name, best.MeanSeconds*1e3)
	fmt.Printf("Cost of the budget: %.2f ms per update cycle.\n",
		(pick.MeanSeconds-best.MeanSeconds)*1e3)

	// The hierarchy really computes: run the chain once on the host to show
	// the penalty threading of Procedure 5/6.
	real, err := workload.RunScientificCode(3, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOne real execution of the hierarchy (host kernels): final penalty %.6f\n",
		real.FinalPenalty)
}
