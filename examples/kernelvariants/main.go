// Kernel-variant example: the paper's concluding observation (§V) that even
// a single line of a scientific code — the Regularized Least Squares solve
// of Procedure 6 — admits many mathematically equivalent algorithms with
// significantly different performance. Three equivalent RLS implementations
// (normal equations + Cholesky, augmented-matrix QR, explicit inversion) are
// executed FOR REAL on this machine, and their measured wall-time
// distributions are clustered with the same relative-performance
// methodology used for the device placements.
//
//	go run ./examples/kernelvariants
package main

import (
	"fmt"
	"log"
	"os"

	"relperf"
	"relperf/internal/report"
	"relperf/internal/workload"
)

func main() {
	// First, the equivalence witness: all variants solve the same problem.
	diff, err := workload.VerifyVariantsAgree(48, 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max pairwise solution difference across variants: %.2e "+
		"(mathematically equivalent)\n\n", diff)

	// Measure real executions at two problem sizes: the ranking can change
	// with size, which is why measurement-based clustering is needed at
	// all.
	for _, size := range []int{48, 96} {
		ss, err := workload.MeasureKernelVariants(workload.KernelStudyConfig{
			Size: size, Iters: 3, N: 30, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== size %d ====\n", size)
		if err := report.SummaryTable(os.Stdout, ss.Names(), ss.Data()); err != nil {
			log.Fatal(err)
		}
		_, fa, err := relperf.ClusterSamples(ss, nil, 100, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nFinal clustering:")
		if err := report.FinalTable(os.Stdout, fa, ss.Names()); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
