// Energy-aware switching example: the paper's closing Section-IV scenario.
// The application would ideally run everything on the edge device (algDDD),
// but the device cannot sustain the energy draw. When its thermal/energy
// accumulator crosses a threshold, the session switches to the most
// offloading algorithm of the neighbouring performance classes (algDAA in
// the paper) and switches back after the device cools.
//
//	go run ./examples/energyswitch
package main

import (
	"fmt"
	"log"

	"relperf"
	"relperf/internal/decision"
)

func main() {
	// Cluster the Table-I placements first: the policy needs to know which
	// algorithms are equivalent-or-close in speed before trading energy.
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10),
		N:       30,
		Reps:    100,
		Seed:    5,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	preferred, err := result.ProfileByName("DDD")
	if err != nil {
		log.Fatal(err)
	}
	// The fallback is the most offloading algorithm at DDD's class or
	// better — the paper picks algDAA.
	fallback, err := decision.MostOffloading(result.Profiles, preferred.Rank)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preferred alg%s: %.2f ms, %.2f J on the edge per run\n",
		preferred.Name, preferred.MeanSeconds*1e3, preferred.EdgeJoules)
	fmt.Printf("fallback  alg%s: %.2f ms, %.2f J on the edge per run\n\n",
		fallback.Name, fallback.MeanSeconds*1e3, fallback.EdgeJoules)

	switcher := &decision.Switcher{
		Preferred:        preferred,
		Fallback:         fallback,
		HighWater:        8, // joules in the thermal accumulator
		LowWater:         2,
		DissipationWatts: 30,
	}
	session, err := switcher.RunSession(200)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("200 back-to-back jobs: %d switches, %d jobs on the fallback (%.0f%%)\n",
		session.Switches, session.FallbackJobs, 100*float64(session.FallbackJobs)/200)
	fmt.Printf("session time %.2f s, edge energy %.1f J, peak accumulator %.2f J\n\n",
		session.TotalSeconds, session.TotalEdgeJoules, session.PeakEnergy)

	// Contrast with never switching: the naive session overheats.
	naive := &decision.Switcher{
		Preferred:        preferred,
		Fallback:         preferred, // "switching" to itself
		HighWater:        switcher.HighWater,
		LowWater:         switcher.LowWater,
		DissipationWatts: switcher.DissipationWatts,
	}
	naiveSession, err := naive.RunSession(200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without switching, the accumulator peaks at %.1f J (vs %.1f J budget) —\n"+
		"the policy keeps the device within budget at a cost of %.1f ms per job on average.\n",
		naiveSession.PeakEnergy, switcher.HighWater,
		(session.TotalSeconds-naiveSession.TotalSeconds)/200*1e3)
}
