// Quickstart: measure the paper's Table-I scientific code (three Regularized
// Least Squares loops, sizes 50/75/300) on the modeled Xeon+P100 testbed,
// cluster the 8 device/accelerator placements into performance classes and
// print the Table-I-style report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"relperf"
)

func main() {
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Program: relperf.TableIProgram(10), // n = 10 loop iterations per task
		N:       30,                        // measurements per algorithm
		Reps:    100,                       // clustering repetitions
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := result.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The profiles drive algorithm selection beyond raw speed.
	fmt.Println("\nPer-algorithm resource profiles:")
	for _, p := range result.Profiles {
		fmt.Printf("  alg%s: class C%d, mean %.2f ms, edge %.2e flops, accel %.2e flops\n",
			p.Name, p.Rank, p.MeanSeconds*1e3, float64(p.EdgeFlops), float64(p.AccelFlops))
	}
}
