// Figure 1 example: the two-loop scientific code of the paper's
// introduction. Loop L1 (a short loop of mid-size matrix products) is
// profitable to offload; loop L2 (a long loop of smaller products) moves so
// much data that the accelerator's speed-up is cancelled. The four
// placements DD, DA, AD, AA are measured 500 times each and clustered; AD
// wins, DD and DA are statistically equivalent.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"
	"os"

	"relperf"
	"relperf/internal/report"
	"relperf/internal/workload"
)

func main() {
	platform := relperf.Figure1Platform()
	study, err := relperf.NewStudy(relperf.StudyConfig{
		Platform: platform,
		Program:  workload.Figure1(platform.Accel.PeakFlops),
		N:        500,
		Reps:     100,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Execution-time distributions (the paper's Figure 1b):")
	if err := report.Histograms(os.Stdout, result.Names, result.Samples.Data(), 20, 40); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Relative-performance clustering:")
	if err := report.ClusterTable(os.Stdout, result.Clusters, result.Names); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFinal clustering:")
	if err := report.FinalTable(os.Stdout, result.Final, result.Names); err != nil {
		log.Fatal(err)
	}
}
