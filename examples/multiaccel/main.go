// Multi-accelerator example: the paper notes the approach "extends
// naturally to any Device-Accelerator(s) combinations". Here the edge host
// can offload each of the three Table-I tasks to either a local P100 over
// PCIe ("A") or a far faster remote server behind a high-latency 5G link
// ("B") — 3³ = 27 equivalent algorithms. The clustering shows which
// combinations are worth it: the remote server only pays off for the
// largest task, and only when the link is idle enough.
//
//	go run ./examples/multiaccel
package main

import (
	"fmt"
	"log"
	"sort"

	"relperf/internal/compare"
	"relperf/internal/core"
	"relperf/internal/device"
	"relperf/internal/sim"
	"relperf/internal/stats"
	"relperf/internal/workload"
)

func main() {
	p100 := device.P100()
	server := device.P100()
	server.Name = "remote-dgx"
	server.PeakFlops *= 4 // a multi-GPU server node
	platform := &sim.MultiPlatform{
		Devices: []*device.Device{device.XeonCore(), p100, server},
		Links:   []*device.Link{nil, device.PCIe3x16(), device.FiveG()},
	}

	prog := workload.TableI(10, p100.PeakFlops)
	// Per-device efficiencies: the remote server sustains 4x the P100's
	// rate on the same op chain (more SMs hide the chain's serialization).
	effs := make([][]float64, len(prog.Tasks))
	for i := range prog.Tasks {
		a := prog.Tasks[i].AccelEff
		effs[i] = []float64{0, a, a} // same fraction of a 4x peak
	}

	s, err := sim.NewMultiSimulator(platform, 7)
	if err != nil {
		log.Fatal(err)
	}
	s.Effs = effs

	placements := sim.EnumerateMultiPlacements(3, 3)
	fmt.Printf("%d equivalent algorithms over %d devices\n\n", len(placements), len(platform.Devices))

	samples := make([][]float64, len(placements))
	for i, pl := range placements {
		samples[i], err = s.Sample(prog, pl, 30)
		if err != nil {
			log.Fatal(err)
		}
	}

	cmp := compare.NewBootstrap(11)
	cf := func(i, j int) (compare.Outcome, error) { return cmp.Compare(samples[i], samples[j]) }
	res, err := core.Cluster(len(placements), cf, core.ClusterOptions{Reps: 60, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fa, err := res.Finalize()
	if err != nil {
		log.Fatal(err)
	}

	// Print the top two and bottom classes with mean times.
	type row struct {
		name string
		rank int
		mean float64
	}
	rows := make([]row, len(placements))
	for i, pl := range placements {
		rows[i] = row{pl.String(), fa.Rank[i], stats.Mean(samples[i])}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].rank != rows[b].rank {
			return rows[a].rank < rows[b].rank
		}
		return rows[a].mean < rows[b].mean
	})
	fmt.Printf("%d performance classes; fastest and slowest:\n", fa.K)
	for _, r := range rows {
		if r.rank <= 2 || r.rank == fa.K {
			fmt.Printf("  C%d  alg%s  %.2f ms\n", r.rank, r.name, r.mean*1e3)
		}
	}

	// Where did the remote server help?
	bestWithB := ""
	for _, r := range rows {
		for _, c := range r.name {
			if c == 'B' {
				bestWithB = r.name
				break
			}
		}
		if bestWithB != "" {
			fmt.Printf("\nbest algorithm using the remote server: alg%s (class C%d)\n",
				bestWithB, r.rank)
			break
		}
	}
}
