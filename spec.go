package relperf

// Declarative study specifications: the JSON wire schema clients use to
// describe a study — program, platform, engine parameters — without any Go
// code. A StudySpec either names one of the built-in workloads (tableI,
// fig1) or carries a declarative ProgramSpec (a chain of named kernels with
// per-task sizes and iteration counts) plus an optional PlatformSpec
// (device presets or explicit speed/energy/noise parameters). Config
// resolves a validated spec into a runnable StudyConfig; because resolution
// produces the exact model objects the engine fingerprints, equal specs
// share one canonical Fingerprint, dedupe in suites and derive stable
// seeds — the property the fleet daemon's spec snapshots rely on to
// recompute evicted studies after a restart.
//
// Validation is strict: unknown JSON fields, out-of-range values, kernel
// parameter mix-ups and unknown preset names are explicit errors, never
// silent defaults. Zero values mean the library defaults, exactly as in
// StudyConfig.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"relperf/internal/compare"
	"relperf/internal/device"
	"relperf/internal/sim"
	"relperf/internal/workload"
)

// Spec size bounds. They keep declarative submissions inside what the
// engine can actually enumerate and compute: placements grow as 2^tasks and
// task FLOP volumes must stay well inside int64.
const (
	// MaxSpecTasks bounds the task-chain length of a declarative program
	// (the engine enumerates 2^L placements when none are given).
	MaxSpecTasks = 16
	// MaxSpecKernelSize bounds the matrix dimension of rls/gemm kernels.
	MaxSpecKernelSize = 1 << 20
	// MaxSpecKernelIters bounds the loop count of rls/gemm kernels.
	MaxSpecKernelIters = 1 << 30
	// maxSpecFlops bounds a task's total FLOP volume (iters × per-iter).
	maxSpecFlops = float64(1 << 62)
	// maxNoiseDepth bounds base-model nesting in a NoiseSpec.
	maxNoiseDepth = 8
)

// SpecCount is an integer wire field that also accepts JSON exponent
// notation — resource volumes read naturally as "flops": 4e8. Plain
// integer literals are exact over the full int64 range; fraction or
// exponent forms go through float64 and must convert to int64 exactly
// (1e16 is fine, 1.5 or 1e19 is not) — anything else is an error, never
// silent rounding. It marshals as a plain JSON integer.
type SpecCount int64

// UnmarshalJSON implements json.Unmarshaler.
func (c *SpecCount) UnmarshalJSON(b []byte) error {
	s := string(bytes.TrimSpace(b))
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		*c = SpecCount(i)
		return nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("relperf: %q is not a count", s)
	}
	// float64(1<<63) is exact, so f >= it (or < the negative bound) is
	// precisely the int64 overflow condition; the round-trip check below
	// rejects in-range values float64 cannot represent exactly.
	if f != math.Trunc(f) || f >= 1<<63 || f < -(1<<63) {
		return fmt.Errorf("relperf: count %s is not an exact integer", s)
	}
	i := int64(f)
	if float64(i) != f {
		return fmt.Errorf("relperf: count %s is not an exact integer", s)
	}
	*c = SpecCount(i)
	return nil
}

// StudySpec is the JSON wire form of a study configuration, shared by
// POST /v1/suites bodies, relperfd startup suites, fleet snapshot files and
// the relperf CLI's -spec mode. Exactly one of Workload and Program must be
// set. Zero values mean the library defaults.
type StudySpec struct {
	// Workload names a built-in program/platform pair: "tableI" or "fig1".
	// Mutually exclusive with Program.
	Workload string `json:"workload,omitempty"`
	// LoopN is the loop iteration count of the tableI workload (default
	// 10); rejected with fig1 (whose loops are fixed) and with Program.
	LoopN int `json:"loop_n,omitempty"`
	// Program is a declarative task chain; mutually exclusive with
	// Workload.
	Program *ProgramSpec `json:"program,omitempty"`
	// Platform overrides the modeled hardware. Optional: named workloads
	// default to their paper testbed, declarative programs to the default
	// Xeon+P100+PCIe platform.
	Platform *PlatformSpec `json:"platform,omitempty"`
	// Measurements is N, the measurements per algorithm (default 30).
	Measurements int `json:"measurements,omitempty"`
	// Warmup measurements are discarded first.
	Warmup int `json:"warmup,omitempty"`
	// Reps is the number of clustering repetitions (default 100).
	Reps int `json:"reps,omitempty"`
	// Matrix enables the precomputed pairwise-statistics clustering path.
	Matrix bool `json:"matrix,omitempty"`
	// MatrixTrials caps the per-pair trials on the matrix path.
	MatrixTrials int `json:"matrix_trials,omitempty"`
	// Comparator selects a built-in comparator at default parameters:
	// "bootstrap" (default), "ks", "mannwhitney", "mean" or "sketch" (the
	// last only together with Sketch).
	Comparator string `json:"comparator,omitempty"`
	// Placements restricts the algorithm set ("DDA", ...); empty means all
	// 2^L placements.
	Placements []string `json:"placements,omitempty"`
	// Sketch switches the study into sketch mode (StudyConfig.SketchK):
	// measurement campaigns stream into fixed-capacity quantile sketches
	// instead of materializing, and the clustering compares sketch
	// quantiles. Incompatible with Matrix and with comparators other than
	// "" or "sketch". A sketch-mode spec fingerprints differently from the
	// same spec without the block — by construction, so exact and
	// approximate results never collide in a fleet store.
	Sketch *SketchSpec `json:"sketch,omitempty"`
}

// SketchSpec parameterizes sketch mode on the wire.
type SketchSpec struct {
	// K is the sketch capacity; rank error is bounded by
	// stats.SketchEpsilon(K) = 2/sqrt(K). Must be in
	// [MinSketchK, MaxStudySketchK].
	K int `json:"k"`
}

// ProgramSpec is a declarative task chain: named kernels from the workload
// layer, resolved against the platform's accelerator peak rate.
type ProgramSpec struct {
	// Name labels the program in reports and is part of the study's
	// canonical fingerprint; default "custom".
	Name string `json:"name,omitempty"`
	// Tasks is the dependent task chain, executed strictly in order.
	Tasks []TaskSpec `json:"tasks"`
}

// TaskSpec describes one task of a declarative program. Kernel selects the
// resource model:
//
//   - "rls": a loop of Iters Regularized-Least-Squares MathTasks on
//     Size×Size matrices (the paper's Procedure 6), with the calibrated
//     accelerator-efficiency curve of the workload layer.
//   - "gemm": a loop of Iters Size×Size matrix products (the Figure-1
//     kernel), optionally with a same-device cache-carry penalty.
//   - "raw": a direct resource description (flops, bytes, launches,
//     transfers, efficiencies) for workloads outside the built-in kernels.
type TaskSpec struct {
	// Name labels the task ("L1"); required.
	Name string `json:"name"`
	// Kernel is "rls", "gemm" or "raw".
	Kernel string `json:"kernel"`
	// Size is the matrix dimension of rls/gemm kernels.
	Size int `json:"size,omitempty"`
	// Iters is the loop count of rls/gemm kernels.
	Iters int `json:"iters,omitempty"`
	// Lambda is the rls regularization constant (default 0.5); rls only.
	Lambda float64 `json:"lambda,omitempty"`
	// CachePenaltySeconds is the extra cost when the task runs on the same
	// device as its predecessor; gemm and raw kernels only.
	CachePenaltySeconds float64 `json:"cache_penalty_seconds,omitempty"`

	// Raw resource description (kernel "raw" only; see sim.Task).
	Flops        SpecCount `json:"flops,omitempty"`
	MemBytes     SpecCount `json:"mem_bytes,omitempty"`
	Launches     SpecCount `json:"launches,omitempty"`
	HostInBytes  SpecCount `json:"host_in_bytes,omitempty"`
	HostOutBytes SpecCount `json:"host_out_bytes,omitempty"`
	Transfers    SpecCount `json:"transfers,omitempty"`
	// EdgeEff and AccelEff are the sustainable fractions of the device
	// peak for this op mix, in (0,1]. As in sim.Task, 0 (or omitted) means
	// 1.0 — fully efficient; a device the task can barely use wants a
	// small positive value, not 0.
	EdgeEff  float64 `json:"edge_eff,omitempty"`
	AccelEff float64 `json:"accel_eff,omitempty"`
}

// PlatformSpec models the hardware declaratively: either a named preset or
// explicit edge/accel/link descriptions. Components left nil default to the
// paper testbed's corresponding part (Xeon core, P100, PCIe).
type PlatformSpec struct {
	// Name references a custom platform defined once in the enclosing
	// suite's top-level "platforms" map (see ExpandPlatformRefs). A
	// reference is resolved — substituted by the named definition — before
	// validation; a spec that still carries one outside a suite is an
	// error, never a silent default. Mutually exclusive with every other
	// field.
	Name string `json:"name,omitempty"`
	// Preset names a complete platform: "xeon-p100" (the paper testbed,
	// also the default) or "fig1" (the testbed with the Figure-1 noise
	// amplitudes). Mutually exclusive with the component fields.
	Preset string `json:"preset,omitempty"`
	// Edge is the edge device ("D").
	Edge *DeviceSpec `json:"edge,omitempty"`
	// Accel is the accelerator ("A").
	Accel *DeviceSpec `json:"accel,omitempty"`
	// Link is the interconnect between them.
	Link *LinkSpec `json:"link,omitempty"`
}

// DeviceSpec describes one device: a named preset or explicit parameters.
type DeviceSpec struct {
	// Preset names a built-in device model: "xeon-8160-core", "p100",
	// "raspberry-pi-4" or "smartphone-soc". Mutually exclusive with the
	// explicit fields.
	Preset string `json:"preset,omitempty"`
	// Name identifies an explicitly described device; required without
	// Preset and part of the canonical fingerprint.
	Name string `json:"name,omitempty"`
	// PeakFlops is the sustained rate in FLOP/s; required, > 0.
	PeakFlops float64 `json:"peak_flops,omitempty"`
	// MemBandwidth is in bytes/s; required, > 0.
	MemBandwidth float64 `json:"mem_bandwidth,omitempty"`
	// LaunchOverheadNs is the per-dispatch cost in nanoseconds.
	LaunchOverheadNs SpecCount `json:"launch_overhead_ns,omitempty"`
	// TaskOverheadNs is the per-task setup cost in nanoseconds.
	TaskOverheadNs SpecCount `json:"task_overhead_ns,omitempty"`
	// Threads is the host worker-thread count of the hybrid executor.
	Threads int `json:"threads,omitempty"`
	// Noise perturbs computed durations; nil means noiseless.
	Noise *NoiseSpec `json:"noise,omitempty"`
	// Energy converts activity into joules; nil means zero-power.
	Energy *EnergySpec `json:"energy,omitempty"`
}

// LinkSpec describes the edge↔accelerator interconnect.
type LinkSpec struct {
	// Preset names a built-in link model: "pcie3-x16", "wifi" or
	// "5g-edge". Mutually exclusive with the explicit fields.
	Preset string `json:"preset,omitempty"`
	// Name identifies an explicitly described link.
	Name string `json:"name,omitempty"`
	// LatencyNs is the fixed per-transfer cost in nanoseconds.
	LatencyNs SpecCount `json:"latency_ns,omitempty"`
	// Bandwidth is in bytes/s; required, > 0.
	Bandwidth float64 `json:"bandwidth,omitempty"`
	// Noise perturbs transfer times; nil means deterministic.
	Noise *NoiseSpec `json:"noise,omitempty"`
}

// NoiseSpec selects one of the built-in noise models — exactly the set the
// fingerprinting layer can canonically identify.
type NoiseSpec struct {
	// Kind is "none", "lognormal", "gaussian", "spiky" or "shift".
	Kind string `json:"kind"`
	// Sigma is the log-standard-deviation of "lognormal".
	Sigma float64 `json:"sigma,omitempty"`
	// Rel and Floor parameterize "gaussian".
	Rel   float64 `json:"rel,omitempty"`
	Floor float64 `json:"floor,omitempty"`
	// P, Scale and Alpha parameterize the "spiky" tail.
	P     float64 `json:"p,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
	// Shift is the added delay in seconds of "shift".
	Shift float64 `json:"shift,omitempty"`
	// Base is the inner model of "spiky" and "shift".
	Base *NoiseSpec `json:"base,omitempty"`
}

// EnergySpec is the wire form of device.EnergyModel.
type EnergySpec struct {
	IdleWatts     float64 `json:"idle_watts,omitempty"`
	ActiveWatts   float64 `json:"active_watts,omitempty"`
	JoulesPerByte float64 `json:"joules_per_byte,omitempty"`
}

// ParseStudySpec parses one StudySpec document, rejecting unknown fields
// so schema typos fail loudly instead of silently running a default study.
// The spec is validated; use Config to resolve it.
func ParseStudySpec(b []byte) (*StudySpec, error) {
	var sp StudySpec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("relperf: decoding study spec: %w", err)
	}
	if err := ensureEOF(dec); err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// DecodeStudySpec reads one StudySpec document from rd; see ParseStudySpec.
func DecodeStudySpec(rd io.Reader) (*StudySpec, error) {
	b, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("relperf: reading study spec: %w", err)
	}
	return ParseStudySpec(b)
}

// ensureEOF rejects trailing garbage after a decoded document; a read
// error surfaces as itself rather than being mislabeled as trailing data.
func ensureEOF(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		if err != nil {
			return fmt.Errorf("relperf: reading study spec: %w", err)
		}
		return fmt.Errorf("relperf: trailing data after study spec")
	}
	return nil
}

// Validate checks the spec without resolving it: every out-of-range value,
// kernel/field mix-up and unknown name is an explicit error.
func (sp *StudySpec) Validate() error {
	if (sp.Workload == "") == (sp.Program == nil) {
		return fmt.Errorf("relperf: spec must set exactly one of workload and program")
	}
	if sp.Workload != "" {
		switch sp.Workload {
		case "tableI", "table1", "fig1", "figure1":
		default:
			return fmt.Errorf("relperf: unknown workload %q (want tableI or fig1)", sp.Workload)
		}
	}
	if sp.LoopN < 0 {
		return fmt.Errorf("relperf: loop_n must be >= 0, got %d", sp.LoopN)
	}
	if sp.LoopN > 0 && sp.Workload != "tableI" && sp.Workload != "table1" {
		return fmt.Errorf("relperf: loop_n applies only to the tableI workload")
	}
	if sp.Program != nil {
		if err := sp.Program.Validate(); err != nil {
			return err
		}
	}
	if sp.Platform != nil {
		if err := sp.Platform.Validate(); err != nil {
			return err
		}
	}
	if sp.Measurements < 0 {
		return fmt.Errorf("relperf: measurements must be >= 0, got %d", sp.Measurements)
	}
	if sp.Warmup < 0 {
		return fmt.Errorf("relperf: warmup must be >= 0, got %d", sp.Warmup)
	}
	if sp.Reps < 0 {
		return fmt.Errorf("relperf: reps must be >= 0, got %d", sp.Reps)
	}
	if sp.MatrixTrials < 0 {
		return fmt.Errorf("relperf: matrix_trials must be >= 0, got %d", sp.MatrixTrials)
	}
	if sp.MatrixTrials > 0 && !sp.Matrix {
		return fmt.Errorf("relperf: matrix_trials requires matrix: true")
	}
	switch sp.Comparator {
	case "", "bootstrap", "ks", "mannwhitney", "mean":
	case "sketch":
		if sp.Sketch == nil {
			return fmt.Errorf("relperf: comparator \"sketch\" requires a sketch block")
		}
	default:
		return fmt.Errorf("relperf: unknown comparator %q (want bootstrap, ks, mannwhitney, mean or sketch)", sp.Comparator)
	}
	if sp.Sketch != nil {
		if sp.Sketch.K < MinSketchK || sp.Sketch.K > MaxStudySketchK {
			return fmt.Errorf("relperf: sketch k must be in [%d, %d], got %d",
				MinSketchK, MaxStudySketchK, sp.Sketch.K)
		}
		if sp.Matrix {
			return fmt.Errorf("relperf: sketch mode is incompatible with matrix clustering")
		}
		if sp.Comparator != "" && sp.Comparator != "sketch" {
			return fmt.Errorf("relperf: sketch mode requires comparator \"sketch\" (or none), got %q", sp.Comparator)
		}
	}
	tasks := sp.taskCount()
	for _, raw := range sp.Placements {
		pl, err := sim.ParsePlacement(raw)
		if err != nil {
			return err
		}
		if len(pl) != tasks {
			return fmt.Errorf("relperf: placement %q has %d slots for a %d-task program", raw, len(pl), tasks)
		}
	}
	return nil
}

// taskCount returns the program length the spec resolves to (for placement
// validation). Callers run it only on otherwise-valid specs.
func (sp *StudySpec) taskCount() int {
	switch sp.Workload {
	case "tableI", "table1":
		return 3
	case "fig1", "figure1":
		return 2
	}
	if sp.Program != nil {
		return len(sp.Program.Tasks)
	}
	return 0
}

// CostEstimate returns the admission-control cost of the study the spec
// describes: placements × measurements × clustering repetitions, with the
// library defaults resolved (30 measurements, 100 reps, all 2^L placements
// when none are named) and warmup runs counted as measurements — they are
// simulated all the same. The estimate is what a serving daemon compares
// against its -max-study-cost bound before admitting a spec, so a hostile
// request (say, a 16-task program with no placement list: 65536 placements)
// is priced before any work starts. Call it only on validated specs.
func (sp *StudySpec) CostEstimate() int64 {
	placements := int64(len(sp.Placements))
	if placements == 0 {
		placements = int64(1) << uint(sp.taskCount())
	}
	measurements := int64(sp.Measurements)
	if measurements == 0 {
		measurements = 30
	}
	measurements = satAdd(measurements, int64(sp.Warmup))
	reps := int64(sp.Reps)
	if reps == 0 {
		reps = 100
	}
	// Saturating arithmetic: measurement/rep counts have no schema upper
	// bound, and a product that wrapped around int64 would slip a
	// maximally hostile spec under the admission bound it was built to
	// trip.
	if sp.Sketch != nil {
		// Sketch mode exists precisely so large campaigns do not cost
		// measurements × reps: the clustering repetitions compare fixed-size
		// summaries, never the N measurements. The dominant terms are the
		// simulation itself (placements × measurements) and the clustering
		// work over the summaries (placements × reps).
		return satAdd(satMul(placements, measurements), satMul(placements, reps))
	}
	return satMul(satMul(placements, measurements), reps)
}

// satAdd and satMul saturate at MaxInt64 instead of wrapping; inputs are
// non-negative (spec validation rejects negatives).
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a != 0 && b > math.MaxInt64/a {
		return math.MaxInt64
	}
	return a * b
}

// Config validates the spec and resolves it into a runnable study
// configuration. Seed and Workers are not part of the wire form — the suite
// layers derive the former and budget the latter.
func (sp *StudySpec) Config() (StudyConfig, error) {
	var cfg StudyConfig
	if err := sp.Validate(); err != nil {
		return cfg, err
	}
	var err error
	if sp.Platform != nil {
		cfg.Platform, err = sp.Platform.Resolve()
		if err != nil {
			return cfg, err
		}
	}
	switch {
	case sp.Workload == "tableI" || sp.Workload == "table1":
		if cfg.Platform == nil {
			cfg.Platform = sim.DefaultPlatform()
		}
		loopN := sp.LoopN
		if loopN == 0 {
			loopN = 10
		}
		cfg.Program = workload.TableI(loopN, cfg.Platform.Accel.PeakFlops)
	case sp.Workload == "fig1" || sp.Workload == "figure1":
		if cfg.Platform == nil {
			cfg.Platform = workload.Figure1Platform()
		}
		// The Figure-1 program's offload efficiencies are calibrated to
		// the platform's accelerator peak, as in the relperf CLI.
		cfg.Program = workload.Figure1(cfg.Platform.Accel.PeakFlops)
	default:
		if cfg.Platform == nil {
			cfg.Platform = sim.DefaultPlatform()
		}
		cfg.Program, err = sp.Program.Resolve(cfg.Platform.Accel.PeakFlops)
		if err != nil {
			return cfg, err
		}
	}
	switch sp.Comparator {
	case "", "bootstrap":
		cfg.Comparator = nil
	case "ks":
		cfg.Comparator = compare.KS{}
	case "mannwhitney":
		cfg.Comparator = compare.MannWhitney{}
	case "mean":
		cfg.Comparator = compare.MeanThreshold{}
	case "sketch":
		// Sketch mode's default comparator; NewStudy accepts nil too, but
		// resolving it here keeps Config's output self-describing.
		cfg.Comparator = compare.SketchComparator{}
	}
	if sp.Sketch != nil {
		cfg.SketchK = sp.Sketch.K
		if cfg.Comparator == nil {
			cfg.Comparator = compare.SketchComparator{}
		}
	}
	for _, raw := range sp.Placements {
		pl, err := sim.ParsePlacement(raw)
		if err != nil {
			return cfg, err
		}
		cfg.Placements = append(cfg.Placements, pl)
	}
	cfg.N = sp.Measurements
	cfg.Warmup = sp.Warmup
	cfg.Reps = sp.Reps
	cfg.Matrix = sp.Matrix
	cfg.MatrixTrials = sp.MatrixTrials
	return cfg, nil
}

// Validate checks the program spec.
func (ps *ProgramSpec) Validate() error {
	if len(ps.Tasks) == 0 {
		return fmt.Errorf("relperf: program spec has no tasks")
	}
	if len(ps.Tasks) > MaxSpecTasks {
		return fmt.Errorf("relperf: program spec has %d tasks, max %d (placements grow as 2^tasks)",
			len(ps.Tasks), MaxSpecTasks)
	}
	for i := range ps.Tasks {
		if err := ps.Tasks[i].Validate(); err != nil {
			return fmt.Errorf("relperf: program task %d: %w", i, err)
		}
	}
	return nil
}

// Resolve builds the simulator program, deriving rls/gemm accelerator
// efficiencies from accelPeak (the platform accelerator's PeakFlops).
func (ps *ProgramSpec) Resolve(accelPeak float64) (*sim.Program, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	name := ps.Name
	if name == "" {
		name = "custom"
	}
	p := &sim.Program{Name: name}
	for i := range ps.Tasks {
		task, err := ps.Tasks[i].resolve(accelPeak)
		if err != nil {
			return nil, fmt.Errorf("relperf: program task %d: %w", i, err)
		}
		p.Tasks = append(p.Tasks, task)
	}
	return p, nil
}

// Validate checks one task spec against its kernel's parameter set.
func (ts *TaskSpec) Validate() error {
	if ts.Name == "" {
		return fmt.Errorf("task name is required")
	}
	switch ts.Kernel {
	case "rls", "gemm":
		if ts.Size <= 0 || ts.Size > MaxSpecKernelSize {
			return fmt.Errorf("%s kernel %s: size must be in 1..%d, got %d", ts.Kernel, ts.Name, MaxSpecKernelSize, ts.Size)
		}
		if ts.Iters <= 0 || ts.Iters > MaxSpecKernelIters {
			return fmt.Errorf("%s kernel %s: iters must be in 1..%d, got %d", ts.Kernel, ts.Name, MaxSpecKernelIters, ts.Iters)
		}
		if ts.Flops != 0 || ts.MemBytes != 0 || ts.Launches != 0 ||
			ts.HostInBytes != 0 || ts.HostOutBytes != 0 || ts.Transfers != 0 ||
			ts.EdgeEff != 0 || ts.AccelEff != 0 {
			return fmt.Errorf("%s kernel %s: raw resource fields (flops, launches, ...) apply only to kernel \"raw\"", ts.Kernel, ts.Name)
		}
		if ts.Kernel == "rls" {
			if ts.CachePenaltySeconds != 0 {
				return fmt.Errorf("rls kernel %s: cache_penalty_seconds applies only to gemm and raw kernels", ts.Name)
			}
			if ts.Lambda < 0 {
				return fmt.Errorf("rls kernel %s: lambda must be >= 0, got %v", ts.Name, ts.Lambda)
			}
		} else if ts.Lambda != 0 {
			return fmt.Errorf("gemm kernel %s: lambda applies only to the rls kernel", ts.Name)
		}
		if ts.CachePenaltySeconds < 0 {
			return fmt.Errorf("%s kernel %s: cache_penalty_seconds must be >= 0", ts.Kernel, ts.Name)
		}
	case "raw":
		if ts.Size != 0 || ts.Iters != 0 || ts.Lambda != 0 {
			return fmt.Errorf("raw kernel %s: size/iters/lambda apply only to rls and gemm kernels", ts.Name)
		}
		if ts.Flops < 0 || ts.MemBytes < 0 || ts.Launches < 0 ||
			ts.HostInBytes < 0 || ts.HostOutBytes < 0 || ts.Transfers < 0 {
			return fmt.Errorf("raw kernel %s: resource counts must be >= 0", ts.Name)
		}
		if ts.EdgeEff < 0 || ts.EdgeEff > 1 || ts.AccelEff < 0 || ts.AccelEff > 1 {
			return fmt.Errorf("raw kernel %s: efficiencies must be in [0,1]", ts.Name)
		}
		if ts.CachePenaltySeconds < 0 {
			return fmt.Errorf("raw kernel %s: cache_penalty_seconds must be >= 0", ts.Name)
		}
	case "":
		return fmt.Errorf("task %s: kernel is required (rls, gemm or raw)", ts.Name)
	default:
		return fmt.Errorf("task %s: unknown kernel %q (want rls, gemm or raw)", ts.Name, ts.Kernel)
	}
	return nil
}

// resolve converts the validated task spec into the simulator's resource
// description.
func (ts *TaskSpec) resolve(accelPeak float64) (sim.Task, error) {
	switch ts.Kernel {
	case "rls":
		spec := workload.MathTaskSpec{Name: ts.Name, Size: ts.Size, Iters: ts.Iters, Lambda: ts.Lambda}
		if spec.Lambda == 0 {
			spec.Lambda = 0.5
		}
		if flops := float64(ts.Iters) * float64(spec.FlopsPerIter()); flops > maxSpecFlops {
			return sim.Task{}, fmt.Errorf("rls kernel %s: %g total flops exceeds the engine bound", ts.Name, flops)
		}
		return spec.Task(accelPeak), nil
	case "gemm":
		spec := workload.GEMMTaskSpec{Name: ts.Name, Size: ts.Size, Iters: ts.Iters,
			CachePenaltySeconds: ts.CachePenaltySeconds}
		if flops := float64(ts.Iters) * float64(spec.FlopsPerIter()); flops > maxSpecFlops {
			return sim.Task{}, fmt.Errorf("gemm kernel %s: %g total flops exceeds the engine bound", ts.Name, flops)
		}
		return spec.Task(accelPeak), nil
	case "raw":
		return sim.Task{
			Name:                ts.Name,
			Flops:               int64(ts.Flops),
			MemBytes:            int64(ts.MemBytes),
			Launches:            int64(ts.Launches),
			HostInBytes:         int64(ts.HostInBytes),
			HostOutBytes:        int64(ts.HostOutBytes),
			Transfers:           int64(ts.Transfers),
			EdgeEff:             ts.EdgeEff,
			AccelEff:            ts.AccelEff,
			CachePenaltySeconds: ts.CachePenaltySeconds,
		}, nil
	}
	return sim.Task{}, fmt.Errorf("task %s: unknown kernel %q", ts.Name, ts.Kernel)
}

// platformPresets names the complete built-in platforms.
var platformPresets = map[string]func() *sim.Platform{
	"xeon-p100": sim.DefaultPlatform,
	"default":   sim.DefaultPlatform,
	"tableI":    sim.DefaultPlatform,
	"fig1":      workload.Figure1Platform,
	"figure1":   workload.Figure1Platform,
}

// devicePresets names the built-in device models of internal/device.
var devicePresets = map[string]func() *device.Device{
	"xeon-8160-core": device.XeonCore,
	"p100":           device.P100,
	"raspberry-pi-4": device.RaspberryPi,
	"smartphone-soc": device.Smartphone,
}

// linkPresets names the built-in link models.
var linkPresets = map[string]func() *device.Link{
	"pcie3-x16": device.PCIe3x16,
	"wifi":      device.WiFi,
	"5g-edge":   device.FiveG,
}

// Validate checks the platform spec.
func (ps *PlatformSpec) Validate() error {
	if ps.Name != "" {
		if ps.Preset != "" || ps.Edge != nil || ps.Accel != nil || ps.Link != nil {
			return fmt.Errorf("relperf: platform reference %q excludes preset and explicit edge/accel/link", ps.Name)
		}
		return fmt.Errorf("relperf: unresolved platform reference %q (references resolve only inside a suite with a top-level \"platforms\" map)", ps.Name)
	}
	if ps.Preset != "" {
		if ps.Edge != nil || ps.Accel != nil || ps.Link != nil {
			return fmt.Errorf("relperf: platform preset %q excludes explicit edge/accel/link", ps.Preset)
		}
		if _, ok := platformPresets[ps.Preset]; !ok {
			return fmt.Errorf("relperf: unknown platform preset %q (want xeon-p100 or fig1)", ps.Preset)
		}
		return nil
	}
	if ps.Edge != nil {
		if err := ps.Edge.validate(device.EdgeDevice); err != nil {
			return fmt.Errorf("relperf: platform edge: %w", err)
		}
	}
	if ps.Accel != nil {
		if err := ps.Accel.validate(device.Accelerator); err != nil {
			return fmt.Errorf("relperf: platform accel: %w", err)
		}
	}
	if ps.Link != nil {
		if err := ps.Link.validate(); err != nil {
			return fmt.Errorf("relperf: platform link: %w", err)
		}
	}
	return nil
}

// Resolve builds the simulator platform. Components left nil default to the
// paper testbed's corresponding part.
func (ps *PlatformSpec) Resolve() (*sim.Platform, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if ps.Preset != "" {
		return platformPresets[ps.Preset](), nil
	}
	pl := sim.DefaultPlatform()
	var err error
	if ps.Edge != nil {
		if pl.Edge, err = ps.Edge.resolve(device.EdgeDevice); err != nil {
			return nil, fmt.Errorf("relperf: platform edge: %w", err)
		}
	}
	if ps.Accel != nil {
		if pl.Accel, err = ps.Accel.resolve(device.Accelerator); err != nil {
			return nil, fmt.Errorf("relperf: platform accel: %w", err)
		}
	}
	if ps.Link != nil {
		if pl.Link, err = ps.Link.resolve(); err != nil {
			return nil, fmt.Errorf("relperf: platform link: %w", err)
		}
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// validate checks a device spec for the given platform slot.
func (ds *DeviceSpec) validate(slot device.Kind) error {
	if ds.Preset != "" {
		if ds.Name != "" || ds.PeakFlops != 0 || ds.MemBandwidth != 0 ||
			ds.LaunchOverheadNs != 0 || ds.TaskOverheadNs != 0 || ds.Threads != 0 ||
			ds.Noise != nil || ds.Energy != nil {
			return fmt.Errorf("device preset %q excludes explicit parameters", ds.Preset)
		}
		ctor, ok := devicePresets[ds.Preset]
		if !ok {
			return fmt.Errorf("unknown device preset %q", ds.Preset)
		}
		if ctor().Kind != slot {
			return fmt.Errorf("device preset %q cannot fill the %s slot", ds.Preset, slot)
		}
		return nil
	}
	if ds.Name == "" {
		return fmt.Errorf("device name is required without a preset")
	}
	if ds.PeakFlops <= 0 {
		return fmt.Errorf("device %s: peak_flops must be > 0", ds.Name)
	}
	if ds.MemBandwidth <= 0 {
		return fmt.Errorf("device %s: mem_bandwidth must be > 0", ds.Name)
	}
	if ds.LaunchOverheadNs < 0 || ds.TaskOverheadNs < 0 {
		return fmt.Errorf("device %s: overheads must be >= 0", ds.Name)
	}
	if ds.Threads < 0 {
		return fmt.Errorf("device %s: threads must be >= 0", ds.Name)
	}
	if ds.Noise != nil {
		if err := ds.Noise.validate(0); err != nil {
			return fmt.Errorf("device %s: %w", ds.Name, err)
		}
	}
	if ds.Energy != nil {
		if ds.Energy.IdleWatts < 0 || ds.Energy.ActiveWatts < 0 || ds.Energy.JoulesPerByte < 0 {
			return fmt.Errorf("device %s: energy parameters must be >= 0", ds.Name)
		}
	}
	return nil
}

// resolve builds the device model for the given platform slot.
func (ds *DeviceSpec) resolve(slot device.Kind) (*device.Device, error) {
	if err := ds.validate(slot); err != nil {
		return nil, err
	}
	if ds.Preset != "" {
		return devicePresets[ds.Preset](), nil
	}
	d := &device.Device{
		Name:           ds.Name,
		Kind:           slot,
		PeakFlops:      ds.PeakFlops,
		MemBandwidth:   ds.MemBandwidth,
		LaunchOverhead: time.Duration(ds.LaunchOverheadNs) * time.Nanosecond,
		TaskOverhead:   time.Duration(ds.TaskOverheadNs) * time.Nanosecond,
		Threads:        ds.Threads,
	}
	if ds.Noise != nil {
		n, err := ds.Noise.Resolve()
		if err != nil {
			return nil, fmt.Errorf("device %s: %w", ds.Name, err)
		}
		d.Noise = n
	}
	if ds.Energy != nil {
		d.Energy = device.EnergyModel{
			IdleWatts:     ds.Energy.IdleWatts,
			ActiveWatts:   ds.Energy.ActiveWatts,
			JoulesPerByte: ds.Energy.JoulesPerByte,
		}
	}
	return d, nil
}

// validate checks a link spec.
func (ls *LinkSpec) validate() error {
	if ls.Preset != "" {
		if ls.Name != "" || ls.LatencyNs != 0 || ls.Bandwidth != 0 || ls.Noise != nil {
			return fmt.Errorf("link preset %q excludes explicit parameters", ls.Preset)
		}
		if _, ok := linkPresets[ls.Preset]; !ok {
			return fmt.Errorf("unknown link preset %q", ls.Preset)
		}
		return nil
	}
	if ls.Name == "" {
		return fmt.Errorf("link name is required without a preset")
	}
	if ls.Bandwidth <= 0 {
		return fmt.Errorf("link %s: bandwidth must be > 0", ls.Name)
	}
	if ls.LatencyNs < 0 {
		return fmt.Errorf("link %s: latency_ns must be >= 0", ls.Name)
	}
	if ls.Noise != nil {
		if err := ls.Noise.validate(0); err != nil {
			return fmt.Errorf("link %s: %w", ls.Name, err)
		}
	}
	return nil
}

// resolve builds the link model.
func (ls *LinkSpec) resolve() (*device.Link, error) {
	if err := ls.validate(); err != nil {
		return nil, err
	}
	if ls.Preset != "" {
		return linkPresets[ls.Preset](), nil
	}
	l := &device.Link{
		Name:      ls.Name,
		Latency:   time.Duration(ls.LatencyNs) * time.Nanosecond,
		Bandwidth: ls.Bandwidth,
	}
	if ls.Noise != nil {
		n, err := ls.Noise.Resolve()
		if err != nil {
			return nil, fmt.Errorf("link %s: %w", ls.Name, err)
		}
		l.Noise = n
	}
	return l, nil
}

// validate checks a noise spec at the given base-nesting depth.
func (ns *NoiseSpec) validate(depth int) error {
	if depth > maxNoiseDepth {
		return fmt.Errorf("noise models nest deeper than %d", maxNoiseDepth)
	}
	// allowed mirrors ns with only the fields the kind consumes copied
	// over; any difference means a parameter of another noise kind is set —
	// a mix-up that must not silently run a different model.
	allowed := NoiseSpec{Kind: ns.Kind, Base: ns.Base}
	wantBase := false
	switch ns.Kind {
	case "none":
		allowed.Base = nil
		if *ns != allowed {
			return fmt.Errorf("noise kind none takes no parameters")
		}
		return nil
	case "lognormal":
		allowed.Sigma = ns.Sigma
		if ns.Sigma <= 0 {
			return fmt.Errorf("lognormal noise: sigma must be > 0")
		}
	case "gaussian":
		allowed.Rel, allowed.Floor = ns.Rel, ns.Floor
		if ns.Rel <= 0 {
			return fmt.Errorf("gaussian noise: rel must be > 0")
		}
		if ns.Floor < 0 || ns.Floor >= 1 {
			return fmt.Errorf("gaussian noise: floor must be in [0,1)")
		}
	case "spiky":
		allowed.P, allowed.Scale, allowed.Alpha = ns.P, ns.Scale, ns.Alpha
		if ns.P < 0 || ns.P > 1 {
			return fmt.Errorf("spiky noise: p must be in [0,1]")
		}
		if ns.Scale < 0 {
			return fmt.Errorf("spiky noise: scale must be >= 0")
		}
		if ns.Alpha <= 0 {
			return fmt.Errorf("spiky noise: alpha must be > 0")
		}
		wantBase = true
	case "shift":
		allowed.Shift = ns.Shift
		if ns.Shift < 0 {
			return fmt.Errorf("shift noise: shift must be >= 0")
		}
		wantBase = true
	case "":
		return fmt.Errorf("noise kind is required (none, lognormal, gaussian, spiky or shift)")
	default:
		return fmt.Errorf("unknown noise kind %q (want none, lognormal, gaussian, spiky or shift)", ns.Kind)
	}
	if *ns != allowed {
		return fmt.Errorf("%s noise: parameters of another noise kind are set", ns.Kind)
	}
	if ns.Base != nil {
		if !wantBase {
			return fmt.Errorf("%s noise takes no base model", ns.Kind)
		}
		return ns.Base.validate(depth + 1)
	}
	return nil
}

// Resolve builds the noise model; "none" resolves to nil (which the
// fingerprinting layer treats as the same identity as device.NoNoise).
func (ns *NoiseSpec) Resolve() (device.NoiseModel, error) {
	if err := ns.validate(0); err != nil {
		return nil, err
	}
	return ns.resolve(), nil
}

// resolve builds the already-validated model.
func (ns *NoiseSpec) resolve() device.NoiseModel {
	switch ns.Kind {
	case "none":
		return nil
	case "lognormal":
		return device.LogNormalNoise{Sigma: ns.Sigma}
	case "gaussian":
		return device.GaussianNoise{Rel: ns.Rel, Floor: ns.Floor}
	case "spiky":
		var base device.NoiseModel
		if ns.Base != nil {
			base = ns.Base.resolve()
		}
		return device.SpikyNoise{Base: base, P: ns.P, Scale: ns.Scale, Alpha: ns.Alpha}
	case "shift":
		var base device.NoiseModel
		if ns.Base != nil {
			base = ns.Base.resolve()
		}
		return device.ShiftNoise{Base: base, Shift: ns.Shift}
	}
	return nil
}

// ConfigsFromSpecs resolves every spec into a runnable configuration — the
// bridge from the wire schema to SuiteConfig.Studies.
func ConfigsFromSpecs(specs []StudySpec) ([]StudyConfig, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("relperf: no study specs")
	}
	configs := make([]StudyConfig, len(specs))
	for i := range specs {
		cfg, err := specs[i].Config()
		if err != nil {
			return nil, fmt.Errorf("relperf: spec study %d: %w", i, err)
		}
		configs[i] = cfg
	}
	return configs, nil
}
