package relperf

// Wire encoding of Results: the canonical machine-readable JSON document
// (schema report.ResultSchema) that the relperfd daemon serves and the
// fleet result store persists. Equal Results encode to byte-identical
// documents and the encoding round-trips losslessly, so cached and
// snapshot-restored results are indistinguishable from freshly computed
// ones.

import (
	"io"

	"relperf/internal/report"
)

// MarshalWire returns the canonical compact JSON encoding of the result.
func (r *Result) MarshalWire() ([]byte, error) {
	return report.MarshalResult(&report.ResultJSON{
		Schema:   report.ResultSchema,
		Names:    r.Names,
		Samples:  r.Samples,
		Clusters: r.Clusters,
		Final:    r.Final,
		Profiles: r.Profiles,
	})
}

// WriteJSON writes the canonical encoding followed by a newline.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := r.MarshalWire()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// UnmarshalResultWire parses a document produced by MarshalWire/WriteJSON.
func UnmarshalResultWire(b []byte) (*Result, error) {
	doc, err := report.UnmarshalResult(b)
	if err != nil {
		return nil, err
	}
	return &Result{
		Names:    doc.Names,
		Samples:  doc.Samples,
		Clusters: doc.Clusters,
		Final:    doc.Final,
		Profiles: doc.Profiles,
	}, nil
}

// ReadResultJSON reads one wire document from rd.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	b, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	return UnmarshalResultWire(b)
}
