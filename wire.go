package relperf

// Wire encoding of Results: the canonical machine-readable JSON document
// (schema report.ResultSchema) that the relperfd daemon serves and the
// fleet result store persists. Equal Results encode to byte-identical
// documents and the encoding round-trips losslessly, so cached and
// snapshot-restored results are indistinguishable from freshly computed
// ones.

import (
	"bytes"
	"fmt"
	"io"

	"relperf/internal/report"
	"relperf/internal/stats"
)

// MarshalWire returns the canonical compact JSON encoding of the result.
// Sketch-mode results carry mode "sketch", the sketches and the mode's
// rank-error bound; exact results encode exactly as before sketch mode
// existed.
func (r *Result) MarshalWire() ([]byte, error) {
	doc := &report.ResultJSON{
		Schema:   report.ResultSchema,
		Names:    r.Names,
		Samples:  r.Samples,
		Clusters: r.Clusters,
		Final:    r.Final,
		Profiles: r.Profiles,
	}
	if r.Sketches != nil {
		doc.Mode = report.ResultModeSketch
		doc.Sketches = r.Sketches
		doc.ErrorBound = stats.SketchEpsilon(r.Sketches.K())
	}
	return report.MarshalResult(doc)
}

// WriteJSON writes the canonical encoding followed by a newline.
func (r *Result) WriteJSON(w io.Writer) error {
	b, err := r.MarshalWire()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// UnmarshalResultWire parses a document produced by MarshalWire/WriteJSON.
func UnmarshalResultWire(b []byte) (*Result, error) {
	doc, err := report.UnmarshalResult(b)
	if err != nil {
		return nil, err
	}
	return &Result{
		Names:    doc.Names,
		Samples:  doc.Samples,
		Sketches: doc.Sketches,
		Clusters: doc.Clusters,
		Final:    doc.Final,
		Profiles: doc.Profiles,
	}, nil
}

// ReadResultJSON reads one wire document from rd.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	b, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	return UnmarshalResultWire(b)
}

// GridTask is the envelope of one study sharded to a remote worker: the
// fingerprint addresses it, the derived seed (StudySeed of the suite seed
// and the fingerprint) pins its randomness, and the declarative spec is
// everything a worker needs to reproduce it. Its wire form is the
// relperf/grid-task/v1 schema of internal/report.
type GridTask struct {
	// Fingerprint is the study's canonical config fingerprint.
	Fingerprint string
	// Seed is the derived study seed.
	Seed uint64
	// Spec is the study's declarative wire spec (StudySpec JSON).
	Spec []byte
}

// MarshalWire returns the canonical compact relperf/grid-task/v1 encoding.
func (t *GridTask) MarshalWire() ([]byte, error) {
	return report.MarshalTask(&report.TaskJSON{
		Schema:      report.TaskSchema,
		Fingerprint: t.Fingerprint,
		Seed:        t.Seed,
		Spec:        t.Spec,
	})
}

// UnmarshalGridTask parses a document produced by GridTask.MarshalWire.
func UnmarshalGridTask(b []byte) (*GridTask, error) {
	doc, err := report.UnmarshalTask(b)
	if err != nil {
		return nil, err
	}
	return &GridTask{Fingerprint: doc.Fingerprint, Seed: doc.Seed, Spec: doc.Spec}, nil
}

// VerifyGridResult checks a worker's reply against the task that produced
// it: the blob must parse as a relperf/result/v1 document and re-encode to
// the exact same bytes. The canonical-fixed-point check is what lets a
// coordinator merge remote results into its store without trusting the
// worker — a result that is valid but non-canonical would silently break
// the byte-identity contract between grid and single-node runs.
func VerifyGridResult(task GridTask, blob []byte) (*Result, error) {
	res, err := UnmarshalResultWire(blob)
	if err != nil {
		return nil, fmt.Errorf("relperf: grid result for %s: %w", task.Fingerprint, err)
	}
	again, err := res.MarshalWire()
	if err != nil {
		return nil, fmt.Errorf("relperf: grid result for %s: %w", task.Fingerprint, err)
	}
	if !bytes.Equal(again, blob) {
		return nil, fmt.Errorf("relperf: grid result for %s is not canonical (re-encode differs; worker runs an incompatible engine)", task.Fingerprint)
	}
	return res, nil
}
