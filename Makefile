# Development targets for the relperf repository. `make race` exercises the
# parallel study engine under the race detector and is expected on every
# change; `make bench` regenerates BENCH_engine.json for perf tracking.

GO ?= go

.PHONY: all build test race vet bench clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism property tests and TestEngineRaceExercise drive the
# worker pools at full width, so -race patrols every concurrent path.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs the engine benchmarks with allocation reporting and emits the
# machine-readable BENCH_engine.json snapshot.
bench:
	RELPERF_EMIT_BENCH=1 $(GO) test -run TestEmitEngineBenchJSON -count=1 .
	$(GO) test -run xxx -bench 'EngineSerialVsParallel|Allocs' -benchmem .

clean:
	rm -f BENCH_engine.json
