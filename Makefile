# Development targets for the relperf repository. `make race` exercises the
# parallel study engine under the race detector and is expected on every
# change; `make bench` regenerates BENCH_engine.json for perf tracking.

GO ?= go

# serve flags; override like `make serve SERVE_ADDR=:9000 SERVE_SEED=7`.
SERVE_ADDR ?= :8077
SERVE_SEED ?= 1
SERVE_SNAPSHOT ?= relperfd.snapshot.json

.PHONY: all build test race vet bench serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism property tests and TestEngineRaceExercise drive the
# worker pools at full width, so -race patrols every concurrent path.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs the engine benchmarks with allocation reporting and emits the
# machine-readable BENCH_engine.json snapshot.
bench:
	RELPERF_EMIT_BENCH=1 $(GO) test -run TestEmitEngineBenchJSON -count=1 .
	$(GO) test -run xxx -bench 'EngineSerialVsParallel|Allocs' -benchmem .

# Launches the relperfd serving daemon preloaded with the example suite;
# results persist to $(SERVE_SNAPSHOT) so restarts serve warm.
serve:
	$(GO) run ./cmd/relperfd -addr $(SERVE_ADDR) -seed $(SERVE_SEED) \
		-snapshot $(SERVE_SNAPSHOT) -suite examples/suite.json

clean:
	rm -f BENCH_engine.json relperfd.snapshot.json
