# Development targets for the relperf repository. `make race` exercises the
# parallel study engine under the race detector and is expected on every
# change; `make bench` regenerates BENCH_engine.json for perf tracking.

GO ?= go

# serve flags; override like `make serve SERVE_ADDR=:9000 SERVE_SEED=7`.
SERVE_ADDR ?= :8077
SERVE_SEED ?= 1
SERVE_SNAPSHOT ?= relperfd.snapshot.json

# Per-fuzzer budget of `make fuzz`; CI smoke uses a short one, local deep
# runs can override: `make fuzz FUZZTIME=2m`.
FUZZTIME ?= 15s

.PHONY: all build test race vet bench bench-check fuzz serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism property tests and TestEngineRaceExercise drive the
# worker pools at full width, so -race patrols every concurrent path.
race:
	$(GO) test -race ./...

# Static checks: go vet plus the metrics-name lint, which enforces the
# snake_case / _total / unit-suffix naming contract on every registry
# registration (see cmd/metricslint).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/metricslint .

# Runs each wire-format fuzzer for FUZZTIME on top of the committed seed
# corpus: spec parsing, result decoding, suite-request decoding, WAL frame
# decoding and sketch decoding must never panic and must stay canonical.
# `go test -fuzz` takes one target per invocation, hence one line per fuzzer.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseStudySpec$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzUnmarshalResultWire$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSuiteRequest$$' -fuzztime $(FUZZTIME) ./internal/fleet
	$(GO) test -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime $(FUZZTIME) ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzSketchDecode$$' -fuzztime $(FUZZTIME) ./internal/stats

# Runs the engine benchmarks with allocation reporting and emits the
# machine-readable BENCH_engine.json snapshot. The WinRate old/new sweep
# runs only inside the emitter (its numbers land in BENCH_engine.json);
# keeping it out of the -bench line avoids paying the O(N²) old arm twice.
bench:
	RELPERF_EMIT_BENCH=1 $(GO) test -run TestEmitEngineBenchJSON -count=1 .
	$(GO) test -run xxx -bench 'EngineSerialVsParallel|Allocs' -benchmem .

# Gates on the committed performance floors (matrix ≥ 2.5x, index-space
# bootstrap ≥ 1.5x at N=500): run after `make bench` so the freshly emitted
# BENCH_engine.json is what gets checked. CI fails on regression.
bench-check:
	$(GO) run ./cmd/benchcheck BENCH_engine.json

# Launches the relperfd serving daemon preloaded with the example suite;
# results persist to $(SERVE_SNAPSHOT) so restarts serve warm.
serve:
	$(GO) run ./cmd/relperfd -addr $(SERVE_ADDR) -seed $(SERVE_SEED) \
		-snapshot $(SERVE_SNAPSHOT) -suite examples/suite.json

clean:
	rm -f BENCH_engine.json relperfd.snapshot.json
