package relperf

import (
	"bytes"
	"context"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/device"
	"relperf/internal/xrand"
)

func suiteStudies() []StudyConfig {
	return []StudyConfig{
		{Program: smallProgram(), N: 10, Reps: 20},
		{Program: TableIProgram(2), N: 8, Reps: 16, Matrix: true},
		{Program: smallProgram(), N: 10, Reps: 20, Warmup: 1},
	}
}

func TestFingerprintIdentityAndNormalization(t *testing.T) {
	base := StudyConfig{Program: smallProgram(), N: 30, Reps: 100}
	fp, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 32 {
		t.Fatalf("fingerprint %q has length %d, want 32 hex digits", fp, len(fp))
	}

	// Semantically identical configs fingerprint identically: defaults
	// applied or spelled out, Seed and Workers ignored, nil comparator vs.
	// explicit default bootstrap.
	for _, same := range []StudyConfig{
		{Program: smallProgram()}, // N/Reps default to 30/100
		{Program: smallProgram(), N: 30, Reps: 100, Seed: 999, Workers: 7},
		{Program: smallProgram(), N: 30, Reps: 100, Comparator: compare.NewBootstrap(12345)},
		{Program: smallProgram(), N: 30, Reps: 100, MatrixTrials: 64}, // no-op without Matrix
	} {
		got, err := Fingerprint(same)
		if err != nil {
			t.Fatal(err)
		}
		if got != fp {
			t.Fatalf("config %+v fingerprints to %s, want %s", same, got, fp)
		}
	}

	// Result-relevant differences split the identity.
	for _, diff := range []StudyConfig{
		{Program: smallProgram(), N: 31, Reps: 100},
		{Program: smallProgram(), N: 30, Reps: 101},
		{Program: smallProgram(), N: 30, Reps: 100, Warmup: 1},
		{Program: smallProgram(), N: 30, Reps: 100, Matrix: true},
		{Program: TableIProgram(2), N: 30, Reps: 100},
		{Program: smallProgram(), N: 30, Reps: 100, Comparator: compare.KS{}},
		{Program: smallProgram(), N: 30, Reps: 100, Comparator: compare.NewBootstrap(0).Fork(1).(*compare.Bootstrap)},
	} {
		got, err := Fingerprint(diff)
		if err != nil {
			t.Fatal(err)
		}
		if diff.Comparator != nil {
			if b, ok := diff.Comparator.(*compare.Bootstrap); ok {
				// A forked default bootstrap has identical parameters; it
				// must collide with the default, not differ.
				_ = b
				if got != fp {
					t.Fatalf("forked default bootstrap fingerprints to %s, want %s", got, fp)
				}
				continue
			}
		}
		if got == fp {
			t.Fatalf("config %+v collides with the base fingerprint", diff)
		}
	}

	// Custom comparators have no canonical identity.
	custom := compare.Func(func(a, b []float64) (compare.Outcome, error) { return compare.Equivalent, nil })
	if _, err := Fingerprint(StudyConfig{Program: smallProgram(), Comparator: custom}); err == nil {
		t.Fatal("custom comparator fingerprinted")
	}
}

// fixedNoise is a custom model the fingerprint layer cannot canonically
// observe.
type fixedNoise struct{}

func (fixedNoise) Perturb(_ *xrand.Rand, nominal float64) float64 { return nominal }

// TestFingerprintNoiseCanonical: pointer and value forms of a noise model
// are one identity (fmt %#v would have hashed the pointer's address and
// destabilized fingerprints across process runs), and unknown noise models
// are rejected like unknown comparators.
func TestFingerprintNoiseCanonical(t *testing.T) {
	withNoise := func(n device.NoiseModel) StudyConfig {
		plat := DefaultPlatform()
		edge := *plat.Edge
		edge.Noise = n
		plat.Edge = &edge
		return StudyConfig{Program: smallProgram(), Platform: plat, N: 10, Reps: 20}
	}
	value, err := Fingerprint(withNoise(device.SpikyNoise{
		Base: device.LogNormalNoise{Sigma: 0.1}, P: 0.02, Scale: 0.2, Alpha: 1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := Fingerprint(withNoise(&device.SpikyNoise{
		Base: &device.LogNormalNoise{Sigma: 0.1}, P: 0.02, Scale: 0.2, Alpha: 1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if value != ptr {
		t.Fatalf("pointer-shaped noise fingerprints to %s, value form to %s", ptr, value)
	}
	other, err := Fingerprint(withNoise(device.SpikyNoise{
		Base: device.LogNormalNoise{Sigma: 0.2}, P: 0.02, Scale: 0.2, Alpha: 1.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if other == value {
		t.Fatal("different noise parameters collide")
	}
	if _, err := Fingerprint(withNoise(fixedNoise{})); err == nil {
		t.Fatal("custom noise model fingerprinted")
	}

	// Every built-in model has an identity, including the paper's
	// footnote-2 ShiftNoise; NoNoise and nil collide (neither perturbs).
	shifted, err := Fingerprint(withNoise(device.ShiftNoise{Shift: 0.001, Base: device.LogNormalNoise{Sigma: 0.1}}))
	if err != nil {
		t.Fatal(err)
	}
	if shifted == value {
		t.Fatal("ShiftNoise collides with SpikyNoise")
	}
	none, err := Fingerprint(withNoise(device.NoNoise{}))
	if err != nil {
		t.Fatal(err)
	}
	nilNoise, err := Fingerprint(withNoise(nil))
	if err != nil {
		t.Fatal(err)
	}
	if none != nilNoise {
		t.Fatal("NoNoise and nil noise are behaviorally identical but fingerprint differently")
	}
}

// TestSuiteWorkerDeterminism is the fleet acceptance property: a suite run
// at Workers=1 and Workers=8 yields byte-identical JSON wire documents for
// every study.
func TestSuiteWorkerDeterminism(t *testing.T) {
	encodeAll := func(workers int) map[string][]byte {
		sr, err := RunSuite(context.Background(), SuiteConfig{
			Studies: suiteStudies(),
			Seed:    42,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte, len(sr.Results))
		for i, fp := range sr.Fingerprints {
			blob, err := sr.Results[i].MarshalWire()
			if err != nil {
				t.Fatal(err)
			}
			out[fp] = blob
		}
		return out
	}
	ref := encodeAll(1)
	got := encodeAll(8)
	if len(ref) != len(got) {
		t.Fatalf("study counts differ: %d vs %d", len(ref), len(got))
	}
	for fp, blob := range ref {
		if !bytes.Equal(blob, got[fp]) {
			t.Fatalf("study %s differs between Workers=1 and Workers=8", fp)
		}
	}
}

// TestSuiteDedupeAndCompositionInvariance: duplicate configs run once, and
// a study's result does not depend on what else is in the suite — it equals
// the standalone study run under the derived seed.
func TestSuiteDedupeAndCompositionInvariance(t *testing.T) {
	cfgs := suiteStudies()
	cfgs = append(cfgs, cfgs[0]) // duplicate of the first study
	suite, err := NewSuite(SuiteConfig{Studies: cfgs, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fps := suite.Fingerprints()
	if len(fps) != 4 || fps[0] != fps[3] {
		t.Fatalf("fingerprints = %v, want the duplicate mapped to the first", fps)
	}
	if suite.Len() != 3 {
		t.Fatalf("suite runs %d studies, want 3 after dedupe", suite.Len())
	}

	var streamed int
	sr, err := suite.Stream(context.Background(), func(StudyOutcome) { streamed++ })
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Fatalf("streamed %d outcomes, want 3", streamed)
	}

	// Standalone reproduction of the first study from (seed, fingerprint)
	// alone.
	seed, err := StudySeed(7, fps[0])
	if err != nil {
		t.Fatal(err)
	}
	sc := cfgs[0]
	sc.Seed = seed
	study, err := NewStudy(sc)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := standalone.MarshalWire()
	inSuite, ok := sr.ByFingerprint(fps[0])
	if !ok {
		t.Fatal("first study missing from suite result")
	}
	got, _ := inSuite.MarshalWire()
	if !bytes.Equal(want, got) {
		t.Fatal("suite result differs from the standalone study under the derived seed")
	}
}

func TestResultWireRoundTrip(t *testing.T) {
	study, err := NewStudy(StudyConfig{Program: smallProgram(), N: 8, Reps: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalResultWire(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := back.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("wire round trip is lossy")
	}
	// Profiles survive the wire, so remote clients can drive the decision
	// models directly.
	p, err := back.ProfileByName(res.Profiles[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if p != res.Profiles[0] {
		t.Fatalf("profile differs after round trip: %+v vs %+v", p, res.Profiles[0])
	}
	if _, err := back.ProfileByName("ZZZ"); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

func TestStudySeedValidation(t *testing.T) {
	if _, err := StudySeed(1, "zz"); err == nil {
		t.Fatal("malformed fingerprint accepted")
	}
	a, err := StudySeed(1, "00112233445566778899aabbccddeeff")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := StudySeed(2, "00112233445566778899aabbccddeeff")
	if a == b {
		t.Fatal("suite seed does not reach the derived study seed")
	}
}

func TestRunOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	study, err := NewStudy(StudyConfig{Program: smallProgram(), N: 10, Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.RunOn(ctx, NewBudget(2)); err == nil {
		t.Fatal("cancelled study returned a result")
	}
}
