// Serving-path benchmark: BenchmarkServerGetStudy measures a cached
// GET /v1/studies/{fp} through the full daemon handler stack — mux routing,
// obs middleware, store lookup, response write — without a network socket,
// so the number tracks handler overhead rather than loopback TCP. The
// emitter in benchjson_test.go publishes it as serve_ns_per_op in
// BENCH_engine.json, where `make bench-check` holds it under a committed
// ceiling: the observability middleware must stay invisible on the read
// path.
package relperf_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"relperf"
	"relperf/internal/fleet"
)

// newBenchServer computes one small study and returns a server for which
// that study is a guaranteed cache hit, plus the request that fetches it.
func newBenchServer(tb testing.TB) (*fleet.Server, *fleet.Scheduler, *http.Request) {
	tb.Helper()
	sched := fleet.New(fleet.Options{Workers: 0, Seed: 1})
	srv := fleet.NewServer(sched)
	fp, _, err := sched.Study(context.Background(), relperf.StudyConfig{
		Program: relperf.TableIProgram(2),
		N:       6,
		Reps:    10,
	})
	if err != nil {
		sched.Close()
		tb.Fatal(err)
	}
	return srv, sched, httptest.NewRequest(http.MethodGet, "/v1/studies/"+fp, nil)
}

func BenchmarkServerGetStudy(b *testing.B) {
	srv, sched, req := newBenchServer(b)
	defer sched.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("GET cached study: %d %s", rec.Code, rec.Body.String())
		}
	}
}
