// Engine-level pin of the index-space bootstrap kernel: a reference
// comparator running the old materialize-and-sort kernel drives the full
// clustering engine, and its results must be bit-identical to the shipped
// index-space bootstrap — for equal seeds, at any worker count, on both the
// repetition and matrix paths. internal/compare pins the kernel at the
// WinRate level; this test pins it through every layer above.
package relperf_test

import (
	"reflect"
	"testing"

	"relperf"
	"relperf/internal/compare"
	"relperf/internal/comparetest"
	"relperf/internal/measure"
	"relperf/internal/xrand"
)

// refBootstrap is the pre-index-space bootstrap comparator, kept as the
// executable specification: resamples materialized as values, insertion
// sorted, quantiles read with stats.QuantileSorted. It forks like the real
// one so the engine runs it on the parallel path.
type refBootstrap struct {
	rng  *xrand.Rand
	bufA []float64
	bufB []float64
}

func (c *refBootstrap) Fork(seed uint64) compare.Comparator {
	return &refBootstrap{rng: xrand.New(seed)}
}

func (c *refBootstrap) Compare(a, b []float64) (compare.Outcome, error) {
	if len(a) == 0 || len(b) == 0 {
		return compare.Equivalent, compare.ErrBadSample
	}
	if len(c.bufA) < len(a) {
		c.bufA = make([]float64, len(a))
	}
	if len(c.bufB) < len(b) {
		c.bufB = make([]float64, len(b))
	}
	rate := comparetest.ReferenceWinRate(c.rng, a, b, c.bufA[:len(a)], c.bufB[:len(b)],
		compare.DefaultQuantiles, compare.DefaultRounds)
	switch {
	case rate >= 0.5+compare.DefaultMargin:
		return compare.Better, nil
	case rate <= 0.5-compare.DefaultMargin:
		return compare.Worse, nil
	default:
		return compare.Equivalent, nil
	}
}

// kernelRefSampleSet builds a four-algorithm campaign with overlapping
// distributions, the regime where the bootstrap's stochastic verdicts
// matter.
func kernelRefSampleSet(n int) *measure.SampleSet {
	rng := xrand.New(17)
	meds := []float64{1.0, 1.02, 1.25, 2.0}
	ss := &measure.SampleSet{Workload: "kernel-ref"}
	for i, med := range meds {
		s := measure.Sample{Name: "alg" + string(rune('A'+i)), Seconds: make([]float64, n)}
		for k := range s.Seconds {
			s.Seconds[k] = med * rng.LogNormal(0, 0.15)
		}
		ss.Samples = append(ss.Samples, s)
	}
	return ss
}

func TestEngineIndexKernelMatchesReferenceAtAnyWorkerCount(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		ss := kernelRefSampleSet(n)
		type variant struct {
			name string
			cmp  compare.Comparator
		}
		for _, matrix := range []bool{false, true} {
			var clusters []interface{}
			for _, v := range []variant{
				{"reference", &refBootstrap{}},
				{"index-space", nil}, // nil → the shipped bootstrap comparator
			} {
				for _, workers := range []int{1, 8} {
					cr, fa, err := relperf.ClusterSamplesWith(ss, v.cmp, relperf.ClusterSamplesOptions{
						Reps: 25, Seed: 9, Workers: workers, Matrix: matrix,
					})
					if err != nil {
						t.Fatalf("N=%d %s workers=%d matrix=%v: %v", n, v.name, workers, matrix, err)
					}
					clusters = append(clusters, []interface{}{cr, fa})
				}
			}
			first := clusters[0]
			for i, c := range clusters {
				if !reflect.DeepEqual(first, c) {
					t.Fatalf("N=%d matrix=%v: clustering %d diverged from the reference kernel", n, matrix, i)
				}
			}
		}
	}
}
