package relperf

import (
	"bytes"
	"strings"
	"testing"

	"relperf/internal/compare"
	"relperf/internal/measure"
	"relperf/internal/sim"
)

func smallProgram() *sim.Program {
	// A cheap two-task program with a clear offload trade-off.
	return &sim.Program{
		Name: "test-prog",
		Tasks: []sim.Task{
			{Name: "L1", Flops: 5e8, Launches: 10, HostInBytes: 1e6, HostOutBytes: 1e6, Transfers: 3, EdgeEff: 1, AccelEff: 0.01},
			{Name: "L2", Flops: 2e9, Launches: 10, HostInBytes: 5e6, HostOutBytes: 1e6, Transfers: 3, EdgeEff: 1, AccelEff: 0.05},
		},
	}
}

func TestNewStudyValidation(t *testing.T) {
	if _, err := NewStudy(StudyConfig{}); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewStudy(StudyConfig{Program: &sim.Program{Name: "empty"}}); err == nil {
		t.Fatal("empty program accepted")
	}
	badPl, _ := sim.ParsePlacement("DAD")
	if _, err := NewStudy(StudyConfig{
		Program:    smallProgram(),
		Placements: []sim.Placement{badPl},
	}); err == nil {
		t.Fatal("mismatched placement accepted")
	}
}

func TestStudyRunEndToEnd(t *testing.T) {
	study, err := NewStudy(StudyConfig{
		Program: smallProgram(),
		N:       20,
		Reps:    50,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 {
		t.Fatalf("names = %v", res.Names)
	}
	if err := res.Samples.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Clusters.K < 1 || res.Clusters.K > 4 {
		t.Fatalf("K = %d", res.Clusters.K)
	}
	if res.Final.K < 1 {
		t.Fatal("no final classes")
	}
	if len(res.Profiles) != 4 {
		t.Fatalf("profiles = %d", len(res.Profiles))
	}
	for _, p := range res.Profiles {
		if p.MeanSeconds <= 0 {
			t.Fatalf("profile %s has non-positive mean", p.Name)
		}
		if p.Rank < 1 || p.Rank > res.Final.K {
			t.Fatalf("profile %s rank %d out of range", p.Name, p.Rank)
		}
		if p.Score <= 0 || p.Score > 1+1e-9 {
			t.Fatalf("profile %s score %v", p.Name, p.Score)
		}
	}
	// DD runs everything locally: zero accelerator footprint.
	dd, err := res.ProfileByName("DD")
	if err != nil {
		t.Fatal(err)
	}
	if dd.AccelFlops != 0 || dd.AccelSeconds != 0 {
		t.Fatalf("DD profile has accelerator usage: %+v", dd)
	}
	aa, _ := res.ProfileByName("AA")
	if aa.EdgeFlops != 0 {
		t.Fatalf("AA profile has edge flops: %+v", aa)
	}
	if _, err := res.ProfileByName("ZZ"); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

func TestStudyReproducible(t *testing.T) {
	run := func() *Result {
		study, err := NewStudy(StudyConfig{Program: smallProgram(), N: 10, Reps: 20, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := study.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Samples.Samples {
		for j := range a.Samples.Samples[i].Seconds {
			if a.Samples.Samples[i].Seconds[j] != b.Samples.Samples[i].Seconds[j] {
				t.Fatal("samples differ across identical studies")
			}
		}
	}
	for i := range a.Final.Rank {
		if a.Final.Rank[i] != b.Final.Rank[i] {
			t.Fatal("final ranks differ across identical studies")
		}
	}
}

func TestStudyRestrictedPlacements(t *testing.T) {
	pl1, _ := sim.ParsePlacement("DD")
	pl2, _ := sim.ParsePlacement("AA")
	study, err := NewStudy(StudyConfig{
		Program:    smallProgram(),
		Placements: []sim.Placement{pl1, pl2},
		N:          10,
		Reps:       20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 2 || res.Names[0] != "algDD" {
		t.Fatalf("names = %v", res.Names)
	}
}

func TestStudyCustomComparator(t *testing.T) {
	study, err := NewStudy(StudyConfig{
		Program:    smallProgram(),
		N:          10,
		Reps:       10,
		Comparator: compare.KS{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReport(t *testing.T) {
	study, _ := NewStudy(StudyConfig{Program: smallProgram(), N: 15, Reps: 30, Seed: 4})
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Workload: test-prog", "Measured distributions", "Clustering", "Final clustering", "algDD"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestClusterSamples(t *testing.T) {
	ss := &measure.SampleSet{
		Workload: "w",
		Samples: []measure.Sample{
			{Name: "fast", Seconds: []float64{1, 1.01, 1.02, 0.99, 1.0, 1.03, 0.98, 1.01, 1.0, 1.02}},
			{Name: "slow", Seconds: []float64{2, 2.01, 2.02, 1.99, 2.0, 2.03, 1.98, 2.01, 2.0, 2.02}},
		},
	}
	cr, fa, err := ClusterSamples(ss, nil, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cr.K != 2 {
		t.Fatalf("K = %d, want 2 (clearly separated)", cr.K)
	}
	if fa.Rank[0] != 1 || fa.Rank[1] != 2 {
		t.Fatalf("ranks = %v", fa.Rank)
	}
	// Invalid set rejected.
	if _, _, err := ClusterSamples(&measure.SampleSet{}, nil, 10, 1); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestPublicConstructors(t *testing.T) {
	if err := DefaultPlatform().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Figure1Platform().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TableIProgram(10).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Figure1Program().Validate(); err != nil {
		t.Fatal(err)
	}
	if len(TableIProgram(5).Tasks) != 3 || len(Figure1Program().Tasks) != 2 {
		t.Fatal("program shapes wrong")
	}
}
