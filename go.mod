module relperf

go 1.22
